"""The ``parmonc`` entry point — Python twin of ``parmoncc``/``parmoncf``.

The paper's C usage::

    parmoncc(difftraj, &nrow, &ncol, &maxsv, &res, &seqnum,
             &perpass, &peraver);

becomes::

    result = parmonc(difftraj, nrow=1000, ncol=2, maxsv=10**9,
                     res=1, seqnum=2, perpass=minutes(10),
                     peraver=minutes(20), processors=8)

with the user routine written either as ``difftraj(rng)`` (explicit
generator) or as the paper's argument-less style calling the global
``rnd128()``.

Backend dispatch goes through the engine registry
(:func:`~repro.runtime.engine.register_backend`): each name maps to a
:class:`~repro.runtime.engine.Backend` factory, and the shared
:class:`~repro.runtime.engine.Engine` drives the session lifecycle the
same way for all of them.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.exceptions import BackendError, ConfigurationError
from repro.rng.multiplier import DEFAULT_LEAPS, LeapSet
from repro.runtime.config import RunConfig
from repro.runtime.engine import Engine, available_backends, create_backend
from repro.runtime.files import read_genparam_file
from repro.runtime.job import JobSpec
from repro.runtime.result import RunResult
from repro.runtime.scheduler import Scheduler
from repro.runtime.worker import RealizationRoutine, make_batched
from repro.stats.statistic import normalize_statistics

if TYPE_CHECKING:
    from repro.cluster.simulation import ClusterSpec

__all__ = ["parmonc", "build_job_spec", "BACKENDS"]

#: Names accepted by the ``backend`` argument (registry snapshot; the
#: authoritative, always-current list is ``available_backends()``).
BACKENDS = available_backends()


def _resolve_leaps(workdir: Path, leaps: LeapSet | None) -> LeapSet:
    """Explicit leaps win; otherwise honour ``parmonc_genparam.dat``."""
    if leaps is not None:
        return leaps
    stored = read_genparam_file(workdir)
    if stored is None:
        return DEFAULT_LEAPS
    return LeapSet(
        experiment_exponent=stored["ne_exponent"],
        processor_exponent=stored["np_exponent"],
        realization_exponent=stored["nr_exponent"])


def parmonc(realization: RealizationRoutine | None = None,
            nrow: int = 1, ncol: int = 1,
            maxsv: int = 1, res: int = 0, seqnum: int = 0,
            perpass: float = 1.0, peraver: float = 5.0, *,
            processors: int = 1, backend: str = "sequential",
            workdir: str | Path | None = None,
            leaps: LeapSet | None = None,
            time_limit: float | None = None,
            use_files: bool = True,
            cluster_spec: ClusterSpec | None = None,
            execute_realizations: bool = True,
            start_method: str | None = None,
            connect: str | Sequence | None = None,
            backend_options: Mapping | None = None,
            telemetry: bool = False,
            batch_size: int | None = None,
            on_worker_death: str = "fail",
            death_grace: float = 1.0,
            statistics: Sequence[str] | str | None = None,
            reduction_fanout: int | None = None,
            transport: str = "queue",
            jobs: Sequence | None = None,
            workers: int | None = None,
            max_jobs: int | None = None
            ) -> RunResult | list[RunResult]:
    """Run a massively parallel stochastic simulation.

    Args:
        realization: Routine computing a single realization of the
            random object; ``fn(rng) -> matrix`` or argument-less
            ``fn() -> matrix`` drawing from the global ``rnd128()``.
        nrow: Rows of the realization matrix ``[zeta_ij]``.
        ncol: Columns of the realization matrix.
        maxsv: Maximal total sample volume.
        res: 0 for a new simulation, 1 to resume the previous one (its
            results are folded in automatically, formula (5)).
        seqnum: "Experiments" subsequence number; when resuming it must
            differ from every previous session's.
        perpass: Seconds between a worker's data passes.  0 means "after
            every realization" — the paper's strictest performance-test
            condition; expect heavy exchange traffic.  Use
            :func:`repro.runtime.minutes` for the paper's minute-valued
            arguments.
        peraver: Seconds between collector averaging/saving sweeps
            (0 = on every message; each sweep rewrites the result
            files).
        processors: Number of processors ``M``.
        backend: Any registered backend name — ``"sequential"``,
            ``"multiprocess"`` (real OS processes), ``"simcluster"``
            (discrete-event simulation in virtual time) or
            ``"distributed"`` (TCP ``parmonc-pool`` worker daemons)
            out of the box; see
            :func:`~repro.runtime.engine.register_backend`.
        workdir: Directory for ``parmonc_data``; defaults to the current
            directory.  A ``parmonc_genparam.dat`` there overrides the
            default leap parameters, as in §3.5.
        leaps: Explicit hierarchy parameters (beats the genparam file).
        time_limit: Job time limit in seconds (virtual seconds under
            ``simcluster``).
        use_files: Set False for throwaway in-memory estimation.
        cluster_spec: Hardware model for the ``simcluster`` backend.
        execute_realizations: ``simcluster`` only — False turns the run
            into a pure timing study.
        start_method: ``multiprocess`` only — multiprocessing start
            method override.
        connect: ``distributed`` only — ``parmonc-pool`` address(es)
            to dispatch quota to: ``"host:port"``, a comma-separated
            list, or an iterable of addresses.  See
            ``docs/protocol.md``.
        backend_options: Extra keyword options forwarded to the chosen
            backend's factory (each backend keeps only what its
            signature accepts), for backends whose knobs have no
            dedicated ``parmonc()`` argument — e.g. the distributed
            backend's ``routine_spec`` or ``heartbeat_timeout``.
        telemetry: Record metrics, spans and a JSONL event log under
            ``parmonc_data/telemetry/`` (virtual-clock timestamps under
            ``simcluster``); summarized on ``RunResult.telemetry`` and
            rendered by ``parmonc-report --telemetry``.  See
            :mod:`repro.obs` and ``docs/observability.md``.
        batch_size: Run the batched realization engine with blocks of
            this many realizations per inner-loop pass.  A scalar
            routine is wrapped with :func:`~repro.runtime.worker
            .make_batched`; a routine already carrying a ``batch_size``
            attribute (see :func:`~repro.runtime.worker.batch_routine`)
            is used as-is and this argument must be None.  Estimates are
            bit-identical to the scalar path; see ``docs/performance.md``.
        on_worker_death: ``"fail"`` (default) aborts the run when a
            worker dies short of its final message; ``"reassign"``
            retires the dead rank at its last delivered watermark and
            reissues the remaining quota to a fresh worker on a fresh
            RNG subsequence.  See ``docs/architecture.md``.
        death_grace: Seconds a cleanly-exited worker may stay silent
            before being declared dead (its final message may still be
            crossing the queue).
        statistics: Mergeable statistics to accumulate alongside the
            moments — a sequence of registered kinds or a
            comma-separated string (``"moments"`` is always included
            and always first).  Built-ins: ``"moments"``,
            ``"covariance"``, ``"histogram"``, ``"extrema"``,
            ``"counter"``; user kinds register via
            :func:`repro.stats.register_statistic`.  Extra statistics
            piggyback on every data pass, merge under formula (5) and
            survive save-points; the merged result lands on
            ``RunResult.statistics``.  Default: moments only.
        reduction_fanout: Width of the hierarchical reduction tree.
            None (default) keeps the flat worker->rank-0 exchange;
            ``k >= 2`` inserts interior reducer nodes that coalesce
            their subtree's latest snapshots into one combined message
            upstream, so the collector serves O(fanout) peers instead
            of O(M) workers — estimates stay bit-identical.  Honoured
            by ``multiprocess`` and ``simcluster``; see
            ``docs/reduction.md``.
        transport: ``multiprocess`` only — ``"queue"`` (default,
            pickle over ``mp.Queue``) or ``"shm"`` (zero-copy
            ``multiprocessing.shared_memory`` ring buffers for the
            fixed-layout moment payload, queue fallback for oversized
            payloads).
        jobs: Batch mode — a sequence of experiments to multiplex over
            *one* shared worker pool through a
            :class:`~repro.runtime.scheduler.Scheduler` instead of
            running a single session.  Each item is either a
            :class:`~repro.runtime.job.JobSpec` or a mapping of the
            per-run ``parmonc()`` arguments (``routine``/
            ``realization``, ``nrow``, ``maxsv``, ``seqnum``,
            ``workdir``, ...) plus the job knobs ``name``,
            ``priority``, ``max_workers`` and ``deadline``.  Mutually
            exclusive with ``realization``; the top-level per-run
            arguments are ignored and every job carries its own.
            Returns a list of per-job results in submission order.
        workers: Batch mode — global cap on concurrently running
            workers across all jobs (None = unbounded).
        max_jobs: Batch mode — admission bound on the job queue;
            submitting more raises
            :class:`~repro.exceptions.AdmissionError`.

    Returns:
        The session's :class:`~repro.runtime.result.RunResult`, or the
        per-job list of results in ``jobs=[...]`` batch mode.
    """
    if backend not in available_backends():
        raise ConfigurationError(
            f"unknown backend {backend!r}; choose from "
            f"{available_backends()}")
    if jobs is not None:
        if realization is not None:
            raise ConfigurationError(
                "pass either a single realization routine or "
                "jobs=[...], not both")
        return _run_jobs(jobs, backend=backend, workers=workers,
                         max_jobs=max_jobs, start_method=start_method,
                         connect=connect, backend_options=backend_options)
    if realization is None and execute_realizations:
        raise ConfigurationError(
            "a realization routine is required (or pass jobs=[...] "
            "for batch mode)")
    if workers is not None or max_jobs is not None:
        raise ConfigurationError(
            "workers= and max_jobs= apply to jobs=[...] batch mode "
            "only; a single run sizes its pool with processors=")
    if batch_size is not None:
        if getattr(realization, "batch_size", None) is not None:
            raise ConfigurationError(
                "realization routine already declares its own batch_size; "
                "drop the batch_size argument")
        realization = make_batched(realization, batch_size)
    resolved_workdir = Path(workdir) if workdir is not None else Path.cwd()
    config = RunConfig(
        nrow=nrow, ncol=ncol, maxsv=maxsv, res=res, seqnum=seqnum,
        perpass=perpass, peraver=peraver, processors=processors,
        workdir=resolved_workdir,
        leaps=_resolve_leaps(resolved_workdir, leaps),
        time_limit=time_limit, telemetry=telemetry,
        on_worker_death=on_worker_death, death_grace=death_grace,
        statistics=normalize_statistics(statistics),
        reduction_fanout=reduction_fanout, transport=transport)
    # create_backend keeps only the options the chosen backend's factory
    # accepts, so simcluster-only knobs are silently ignored elsewhere.
    options = dict(backend_options) if backend_options else {}
    options.setdefault("start_method", start_method)
    options.setdefault("cluster_spec", cluster_spec)
    options.setdefault("execute_realizations", execute_realizations)
    options.setdefault("connect", connect)
    backend_impl = create_backend(backend, **options)
    return Engine(backend_impl, config, use_files=use_files).run(realization)


#: Mapping keys of a ``jobs=[...]`` item that flow into its RunConfig.
_JOB_CONFIG_KEYS = frozenset((
    "nrow", "ncol", "maxsv", "res", "seqnum", "perpass", "peraver",
    "processors", "time_limit", "telemetry", "on_worker_death",
    "death_grace"))


def build_job_spec(item, index: int = 0) -> JobSpec:
    """Normalize one ``jobs=[...]`` item into a :class:`JobSpec`.

    Accepts a ready :class:`~repro.runtime.job.JobSpec` (returned
    as-is) or a mapping of per-run ``parmonc()`` arguments plus the
    job knobs (``name``, ``priority``, ``max_workers``, ``deadline``).
    Shared by the batch API and the ``parmonc-sched`` CLI.
    """
    if isinstance(item, JobSpec):
        return item
    if not isinstance(item, Mapping):
        raise ConfigurationError(
            f"job #{index} must be a JobSpec or a mapping of parmonc "
            f"arguments, got {type(item).__name__}")
    spec = dict(item)
    routine = spec.pop("routine", spec.pop("realization", None))
    if not callable(routine):
        raise ConfigurationError(
            f"job #{index} needs a callable 'routine'")
    batch_size = spec.pop("batch_size", None)
    if batch_size is not None:
        if getattr(routine, "batch_size", None) is not None:
            raise ConfigurationError(
                f"job #{index}: routine already declares its own "
                f"batch_size; drop the batch_size key")
        routine = make_batched(routine, batch_size)
    workdir = spec.pop("workdir", None)
    resolved_workdir = (Path(workdir) if workdir is not None
                        else Path.cwd())
    leaps = spec.pop("leaps", None)
    statistics = spec.pop("statistics", None)
    name = spec.pop("name", None)
    priority = spec.pop("priority", 1.0)
    max_workers = spec.pop("max_workers", None)
    deadline = spec.pop("deadline", None)
    use_files = spec.pop("use_files", True)
    config_kwargs = {key: spec.pop(key) for key in tuple(spec)
                     if key in _JOB_CONFIG_KEYS}
    if spec:
        raise ConfigurationError(
            f"job #{index} has unknown keys {sorted(spec)}")
    config = RunConfig(
        workdir=resolved_workdir,
        leaps=_resolve_leaps(resolved_workdir, leaps),
        statistics=normalize_statistics(statistics),
        **config_kwargs)
    return JobSpec(routine=routine, config=config, name=name,
                   priority=priority, max_workers=max_workers,
                   deadline=deadline, use_files=use_files)


def _run_jobs(jobs: Sequence, *, backend: str, workers: int | None,
              max_jobs: int | None, start_method: str | None,
              connect: str | Sequence | None,
              backend_options: Mapping | None) -> list[RunResult]:
    """The ``jobs=[...]`` batch path: one scheduler, one shared pool."""
    specs = [build_job_spec(item, index)
             for index, item in enumerate(jobs)]
    if not specs:
        raise ConfigurationError("jobs=[...] needs at least one job")
    options = dict(backend_options) if backend_options else {}
    options.setdefault("start_method", start_method)
    options.setdefault("connect", connect)
    backend_impl = create_backend(backend, **options)
    scheduler = Scheduler(backend_impl, workers=workers,
                          max_jobs=max_jobs)
    submitted = [scheduler.submit(spec) for spec in specs]
    scheduler.run()
    failed = [job for job in submitted if job.error is not None]
    if failed:
        details = "; ".join(f"{job.id}: {job.error}" for job in failed)
        raise BackendError(
            f"{len(failed)} of {len(submitted)} jobs failed — {details}")
    return [job.result for job in submitted]
