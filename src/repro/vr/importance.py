"""Importance sampling on the unit interval.

To estimate ``E f(U) = integral_0^1 f(x) dx`` when ``f`` concentrates
its mass, sample ``x`` from a proposal density ``p`` instead and weight
by ``f(x) / p(x)``.  Proposals are specified by their inverse CDF, so a
realization still consumes exactly one base random number per draw and
stays replayable.  A polynomial proposal family ``p(x) = (k+1) x**k``
(and its mirror) covers integrands peaked at either endpoint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128

__all__ = ["Proposal", "polynomial_proposal", "exponential_proposal",
           "importance_realization"]


@dataclass(frozen=True)
class Proposal:
    """A sampling density on (0, 1) given by inverse CDF and density.

    Attributes:
        inverse_cdf: Maps a uniform ``u`` to a sample ``x = P^{-1}(u)``.
        density: The density ``p(x)``; must be positive wherever the
            integrand is nonzero.
        name: Label for reports.
    """

    inverse_cdf: Callable[[float], float]
    density: Callable[[float], float]
    name: str = "proposal"


def polynomial_proposal(exponent: float, mirrored: bool = False) -> Proposal:
    """The density ``(k+1) x**k`` on (0, 1), or its mirror about 1/2.

    ``exponent = 0`` recovers plain uniform sampling; larger exponents
    pile mass near 1 (near 0 when mirrored).
    """
    if exponent < 0.0:
        raise ConfigurationError(
            f"exponent must be >= 0, got {exponent}")
    k = exponent

    def inverse(u: float) -> float:
        x = u ** (1.0 / (k + 1.0))
        return 1.0 - x if mirrored else x

    def density(x: float) -> float:
        base = 1.0 - x if mirrored else x
        return (k + 1.0) * base ** k

    side = "0" if mirrored else "1"
    return Proposal(inverse, density,
                    name=f"polynomial k={k} peaked at {side}")


def exponential_proposal(rate: float) -> Proposal:
    """A truncated-exponential density ``p(x) ∝ exp(-rate x)`` on (0, 1).

    Matches integrands decaying away from zero (e.g. attenuation
    kernels in transport problems).
    """
    if rate <= 0.0:
        raise ConfigurationError(f"rate must be > 0, got {rate}")
    normalizer = 1.0 - math.exp(-rate)

    def inverse(u: float) -> float:
        return -math.log(1.0 - u * normalizer) / rate

    def density(x: float) -> float:
        return rate * math.exp(-rate * x) / normalizer

    return Proposal(inverse, density, name=f"truncated exp rate={rate}")


def importance_realization(integrand: Callable[[float], float],
                           proposal: Proposal
                           ) -> Callable[[Lcg128], float]:
    """Build the weighted realization ``f(x)/p(x)`` with ``x ~ p``.

    Its expectation is exactly ``integral_0^1 f(x) dx``; its variance is
    small when ``p`` resembles ``|f|``.
    """
    def realization(rng: Lcg128) -> float:
        u = rng.random()
        x = proposal.inverse_cdf(u)
        weight = proposal.density(x)
        if weight <= 0.0:
            raise ConfigurationError(
                f"proposal {proposal.name!r} has non-positive density "
                f"{weight} at sampled point {x}")
        return integrand(x) / weight

    return realization
