"""Antithetic variates.

For a realization ``f`` monotone in its base random numbers, averaging
``f(U)`` with its mirror ``f(1-U)`` gives an unbiased estimator with
variance reduced by the (negative) covariance of the pair.  The
antithetic twin replays the *same* substream with every uniform
reflected, so the pair consumes exactly one realization substream and
stays deterministic per stream — the property the PARMONC hierarchy
needs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128

__all__ = ["AntitheticStream", "antithetic_realization"]


class AntitheticStream:
    """A uniform source mirroring another: returns ``1 - u`` per draw."""

    __slots__ = ("_inner",)

    def __init__(self, inner) -> None:
        self._inner = inner

    def random(self) -> float:
        """The reflection of the inner stream's next draw."""
        return 1.0 - self._inner.random()

    @property
    def count(self) -> int:
        """Draws taken (delegates to the mirrored stream)."""
        return self._inner.count


def antithetic_realization(routine: Callable[[Lcg128], object]
                           ) -> Callable[[Lcg128], np.ndarray]:
    """Wrap a realization routine with antithetic averaging.

    The returned routine runs ``routine`` on the given stream, replays
    the same stream reflected, and returns the elementwise average.
    Its expectation equals the original's; for monotone routines its
    variance is strictly smaller, so the PARMONC error estimates
    shrink for the same sample volume.

    Args:
        routine: A one-argument realization routine.  (The zero-argument
            global-``rnd128`` style cannot be mirrored transparently and
            is rejected.)
    """
    if not callable(routine):
        raise ConfigurationError("routine must be callable")

    def antithetic(rng: Lcg128) -> np.ndarray:
        state = rng.getstate()
        primary = np.asarray(routine(rng), dtype=np.float64)
        mirror_source = Lcg128(state[0], state[1])
        mirrored = np.asarray(routine(AntitheticStream(mirror_source)),
                              dtype=np.float64)
        if primary.shape != mirrored.shape:
            raise ConfigurationError(
                f"antithetic halves disagree in shape: {primary.shape} "
                f"vs {mirrored.shape}")
        return 0.5 * (primary + mirrored)

    return antithetic
