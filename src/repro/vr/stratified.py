"""Stratified sampling on the first base random number.

The unit interval is cut into ``strata`` equal cells; successive
realizations on a worker cycle through the cells, and the first uniform
a realization consumes is rescaled into its cell.  With proportional
(equal) allocation the plain sample mean remains unbiased while the
between-strata variance component is removed entirely.

The stratum cycle is per-wrapper (hence per-worker-process), so the
allocation is balanced within each worker; the merged estimate stays
unbiased regardless, because every stratum is visited equally often as
long as each worker's quota is a multiple of ``strata`` (and the
imbalance is at most ``strata - 1`` realizations otherwise).

A subtlety worth knowing: stratification leaves the *marginal* variance
of a single realization unchanged — what it removes is the
between-strata component of the variance of the *mean*, through the
negative dependence of the cycled sample.  PARMONC's error formula
``eps = 3 sigma / sqrt(L)`` assumes independence, so for a stratified
run the reported error is an over-estimate (conservative); the true
error of the estimate is smaller, as the test suite demonstrates by
repeating whole experiments.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128

__all__ = ["StratifiedStream", "StratifiedRealization"]


class StratifiedStream:
    """Rescales the *first* draw into a stratum; passes the rest through."""

    __slots__ = ("_inner", "_stratum", "_strata", "_first_taken")

    def __init__(self, inner, stratum: int, strata: int) -> None:
        if not 0 <= stratum < strata:
            raise ConfigurationError(
                f"stratum must be in [0, {strata}), got {stratum}")
        self._inner = inner
        self._stratum = stratum
        self._strata = strata
        self._first_taken = False

    def random(self) -> float:
        """First call: a uniform inside the stratum; later calls: raw."""
        value = self._inner.random()
        if self._first_taken:
            return value
        self._first_taken = True
        return (self._stratum + value) / self._strata


class StratifiedRealization:
    """A realization wrapper cycling its stream through strata.

    Args:
        routine: One-argument realization routine whose *first* uniform
            draw dominates its variance (e.g. the position draw of an
            integration workload).
        strata: Number of equal cells.

    Example:
        >>> wrapped = StratifiedRealization(lambda rng: rng.random(), 4)
        >>> values = [wrapped(Lcg128().jumped(i * 2**43)) for i in range(4)]
        >>> [int(v * 4) for v in values]   # one value per cell
        [0, 1, 2, 3]
    """

    def __init__(self, routine: Callable[[Lcg128], object],
                 strata: int) -> None:
        if not callable(routine):
            raise ConfigurationError("routine must be callable")
        if strata < 2:
            raise ConfigurationError(
                f"need at least 2 strata, got {strata}")
        self._routine = routine
        self._strata = strata
        self._next_stratum = 0

    @property
    def strata(self) -> int:
        """Number of cells in the partition."""
        return self._strata

    @property
    def next_stratum(self) -> int:
        """The cell the next call will sample."""
        return self._next_stratum

    def __call__(self, rng: Lcg128):
        stratum = self._next_stratum
        self._next_stratum = (stratum + 1) % self._strata
        return self._routine(StratifiedStream(rng, stratum, self._strata))
