"""Variance reduction methods built on the PARMONC stream hierarchy.

The paper's cost model (§2.2) makes the case directly: the cost of an
estimator is ``C(zeta) = tau_zeta * Var(zeta)``, and the sample volume
needed for a target error is proportional to ``Var(zeta)`` — so beyond
adding processors, reducing the variance *is* the other lever.  This
package provides the classic constructions as realization-routine
wrappers that preserve the library's core invariant: every wrapped
realization is still a deterministic function of its RNG substream.

* :func:`antithetic_realization` — mirror the substream, average.
* :func:`control_variate_realization` — subtract a fitted, known-mean
  control (fit on a dedicated pilot experiment).
* :class:`StratifiedRealization` — cycle the first uniform through
  equal strata.
* :func:`importance_realization` — sample from a proposal density and
  weight.
"""

from __future__ import annotations

from repro.vr.antithetic import AntitheticStream, antithetic_realization
from repro.vr.control import (
    control_variate_realization,
    fit_control_coefficient,
)
from repro.vr.importance import (
    Proposal,
    exponential_proposal,
    importance_realization,
    polynomial_proposal,
)
from repro.vr.stratified import StratifiedRealization, StratifiedStream

__all__ = [
    "antithetic_realization",
    "AntitheticStream",
    "fit_control_coefficient",
    "control_variate_realization",
    "StratifiedRealization",
    "StratifiedStream",
    "Proposal",
    "polynomial_proposal",
    "exponential_proposal",
    "importance_realization",
]
