"""Control variates.

Given a realization ``f`` and a correlated control ``g`` with known
expectation ``mu_g``, the estimator ``f - beta (g - mu_g)`` is unbiased
for any ``beta`` and has minimal variance at
``beta* = Cov(f, g) / Var(g)``.  The coefficient is fitted on a pilot
sample drawn from a *dedicated* experiment subsequence so the production
sample stays independent of the fit (keeping the estimator exactly
unbiased rather than asymptotically so).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng.lcg128 import Lcg128
from repro.rng.multiplier import DEFAULT_LEAPS, LeapSet
from repro.rng.streams import StreamTree

__all__ = ["fit_control_coefficient", "control_variate_realization"]


def fit_control_coefficient(routine: Callable[[Lcg128], float],
                            control: Callable[[Lcg128], float],
                            pilot_size: int = 500,
                            pilot_experiment: int = 2 ** 10 - 1,
                            leaps: LeapSet = DEFAULT_LEAPS
                            ) -> tuple[float, float]:
    """Estimate ``beta* = Cov(f, g)/Var(g)`` on a pilot sample.

    Both routines are evaluated on the *same* realization streams of a
    dedicated pilot experiment (by default the last experiment index,
    which production runs are unlikely to use).

    Returns:
        ``(beta, pilot_correlation)`` — the fitted coefficient and the
        sample correlation between ``f`` and ``g`` (a useful diagnostic:
        variance shrinks by ``1 - corr**2``).
    """
    if pilot_size < 10:
        raise ConfigurationError(
            f"pilot_size must be >= 10, got {pilot_size}")
    tree = StreamTree(leaps)
    values_f = np.empty(pilot_size)
    values_g = np.empty(pilot_size)
    for index in range(pilot_size):
        values_f[index] = float(routine(
            tree.rng(pilot_experiment, 0, index)))
        values_g[index] = float(control(
            tree.rng(pilot_experiment, 0, index)))
    variance_g = float(np.var(values_g))
    if variance_g == 0.0:
        raise ConfigurationError(
            "control variate is constant on the pilot sample; it "
            "carries no information")
    covariance = float(np.mean(
        (values_f - values_f.mean()) * (values_g - values_g.mean())))
    beta = covariance / variance_g
    correlation = covariance / np.sqrt(variance_g * np.var(values_f)) \
        if np.var(values_f) > 0 else 0.0
    return beta, float(correlation)


def control_variate_realization(routine: Callable[[Lcg128], float],
                                control: Callable[[Lcg128], float],
                                control_mean: float,
                                beta: float
                                ) -> Callable[[Lcg128], float]:
    """Build the adjusted realization ``f - beta (g - mu_g)``.

    ``routine`` and ``control`` must consume the same stream — the
    returned routine replays the realization substream for the control,
    so both see identical base random numbers (which is what makes them
    correlated).
    """
    def adjusted(rng: Lcg128) -> float:
        state = rng.getstate()
        value = float(routine(rng))
        replay = Lcg128(state[0], state[1])
        control_value = float(control(replay))
        return value - beta * (control_value - control_mean)

    return adjusted
