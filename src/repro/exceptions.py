"""Exception hierarchy for the PARMONC reproduction.

Every error raised by this package derives from :class:`ReproError`, so
user code can catch the whole family with a single ``except`` clause.
Warnings derive from :class:`ReproWarning`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CapacityError",
    "ResumeError",
    "CorruptArtifactError",
    "ArtifactVersionError",
    "AdmissionError",
    "BackendError",
    "WireError",
    "RealizationError",
    "ReproWarning",
    "PeriodWarning",
    "SupersededSampleWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A run or generator was configured with invalid parameters.

    Raised, for example, when ``maxsv`` is not positive, when leap
    exponents are not strictly decreasing, or when a resumed run reuses
    the previous session's ``seqnum`` (forbidden by PARMONC section 3.2).
    """


class CapacityError(ReproError, ValueError):
    """A stream index exceeds the capacity of the subsequence hierarchy.

    The default PARMONC hierarchy supports 2**10 experiments, 2**17
    processors per experiment and 2**55 realizations per processor;
    addressing beyond those bounds would alias another stream.
    """


class ResumeError(ReproError, RuntimeError):
    """Resuming a previous simulation failed.

    Raised when ``res=1`` is requested but no previous results exist, or
    when the stored results are incompatible with the new run (different
    matrix shape, corrupted save-point, mismatched generator parameters).
    """


class CorruptArtifactError(ReproError, RuntimeError):
    """An on-disk artifact is torn, truncated or fails its checksum.

    Raised by :mod:`repro.runtime.storage` when a save-point, subtotal
    or result file cannot be trusted.  The persistence layer reacts by
    *quarantining* the file (renaming it ``*.corrupt``) rather than
    aborting recovery outright.
    """


class ArtifactVersionError(ReproError, RuntimeError):
    """An artifact's format version is newer than this installation.

    Unlike :class:`CorruptArtifactError` the file itself is healthy —
    it must not be quarantined; the reader needs upgrading instead.
    """


class BackendError(ReproError, RuntimeError):
    """A runtime backend failed to start, communicate or shut down."""


class AdmissionError(ReproError, RuntimeError):
    """The scheduler refused to admit a job (queue at capacity).

    Raised by :meth:`repro.runtime.scheduler.Scheduler.submit` when the
    scheduler was created with a bounded job queue (``max_jobs``) and
    the bound is reached.  Back-pressure, not failure: the caller may
    retry once earlier jobs finish, lower the submission rate, or raise
    the bound.
    """


class WireError(ReproError, RuntimeError):
    """A distributed-protocol frame is malformed or incompatible.

    Raised by :mod:`repro.runtime.wire` on bad magic, a checksum
    failure, a version mismatch between a run and a ``parmonc-pool``
    daemon, or an undeserializable payload.  The receiving side treats
    the connection as poisoned and drops it.
    """


class RealizationError(ReproError, RuntimeError):
    """The user-supplied realization routine raised or misbehaved.

    Wraps the original exception (available as ``__cause__``) together
    with the stream coordinates at which the failure occurred so that
    the offending realization can be replayed deterministically.
    """

    def __init__(self, message: str, *, experiment: int | None = None,
                 processor: int | None = None,
                 realization: int | None = None) -> None:
        super().__init__(message)
        self.experiment = experiment
        self.processor = processor
        self.realization = realization


class ReproWarning(UserWarning):
    """Base class for all warnings emitted by :mod:`repro`."""


class PeriodWarning(ReproWarning):
    """A generator consumed more of its subsequence than is safe.

    PARMONC recommends using only the first half of the generator period
    (the first 2**125 numbers of the 2**126 period); the same rule is
    applied per leaped subsequence.
    """


class SupersededSampleWarning(ReproWarning):
    """A fresh ``res=0`` session is discarding an existing save-point.

    The burnt ``seqnum`` history of the discarded sample is carried
    forward so later ``res=1`` sessions cannot reuse an experiments
    subsequence that any earlier session — even a superseded one —
    already consumed.
    """
