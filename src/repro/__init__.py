"""repro — a reproduction of PARMONC (Marchenko, PaCT 2011).

A library for massively parallel stochastic simulation: a long-period
128-bit parallel random number generator with a hierarchy of leaped
subsequences, a master-worker runtime that averages sample moments
across processors and supports resuming previous simulations, and the
``genparam``/``manaver`` utilities — plus the simulated-cluster
substrate used to reproduce the paper's evaluation on one machine.

Quick start::

    from repro import parmonc

    def one_realization(rng):
        return rng.random() ** 2          # E = 1/3

    result = parmonc(one_realization, maxsv=100_000, processors=4)
    print(result.estimates.mean[0, 0], "+/-",
          result.estimates.abs_error[0, 0])
"""

from __future__ import annotations

from repro.obs.log import configure_logging, install_null_handler

# Library hygiene: never warn about missing handlers in user programs.
install_null_handler()

from repro.core import (  # noqa: E402
    BACKENDS,
    MonteCarloRun,
    batched_realization,
    parameter_sweep,
    parmonc,
)
from repro.exceptions import (  # noqa: E402
    AdmissionError,
    BackendError,
    CapacityError,
    ConfigurationError,
    PeriodWarning,
    RealizationError,
    ReproError,
    ReproWarning,
    ResumeError,
)
from repro.rng import (  # noqa: E402
    BatchStreams,
    Lcg128,
    StreamTree,
    VectorLcg128,
    initialize_rnd128,
    rnd128,
)
from repro.runtime import (  # noqa: E402
    JobSpec,
    RunConfig,
    RunResult,
    Scheduler,
    batch_routine,
    make_batched,
    minutes,
)
from repro.stats import (  # noqa: E402
    Counter,
    Covariance,
    Estimates,
    Extrema,
    Histogram,
    MomentAccumulator,
    MomentSnapshot,
    Moments,
    Statistic,
    StatisticSet,
    register_statistic,
    statistic_kinds,
)

__version__ = "1.0.0"

__all__ = [
    "parmonc",
    "MonteCarloRun",
    "BACKENDS",
    "batched_realization",
    "parameter_sweep",
    "rnd128",
    "initialize_rnd128",
    "Lcg128",
    "VectorLcg128",
    "BatchStreams",
    "StreamTree",
    "batch_routine",
    "make_batched",
    "RunConfig",
    "RunResult",
    "JobSpec",
    "Scheduler",
    "minutes",
    "Estimates",
    "MomentAccumulator",
    "MomentSnapshot",
    "Statistic",
    "StatisticSet",
    "Moments",
    "Covariance",
    "Histogram",
    "Extrema",
    "Counter",
    "register_statistic",
    "statistic_kinds",
    "ReproError",
    "AdmissionError",
    "ConfigurationError",
    "CapacityError",
    "ResumeError",
    "BackendError",
    "RealizationError",
    "ReproWarning",
    "PeriodWarning",
    "configure_logging",
    "__version__",
]
