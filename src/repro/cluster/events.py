"""A minimal discrete-event engine: a time-ordered callback queue."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable

from repro.exceptions import ConfigurationError

__all__ = ["EventQueue"]


class EventQueue:
    """Priority queue of timed callbacks with FIFO tie-breaking.

    Events scheduled for the same instant run in scheduling order, which
    keeps simulations deterministic regardless of float coincidences.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[float], None]]] = []
        self._sequence = count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time (last dispatched event's time)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, when: float,
                 callback: Callable[[float], None]) -> None:
        """Schedule ``callback(when)`` to run at simulation time ``when``."""
        if when < self._now:
            raise ConfigurationError(
                f"cannot schedule an event at {when} before the current "
                f"simulation time {self._now}")
        heapq.heappush(self._heap, (when, next(self._sequence), callback))

    def step(self) -> bool:
        """Dispatch the earliest event; return False when the queue is empty."""
        if not self._heap:
            return False
        when, _, callback = heapq.heappop(self._heap)
        self._now = when
        callback(when)
        return True

    def run(self, until: float | None = None) -> float:
        """Dispatch events until the queue drains or ``until`` is reached.

        Returns the final simulation time.  Events scheduled beyond
        ``until`` stay queued.
        """
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self._now = until
                break
            self.step()
        return self._now
