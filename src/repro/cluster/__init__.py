"""Discrete-event cluster simulator substrate.

Stands in for the Siberian Supercomputer Center hardware of the paper's
evaluation: processors with a per-realization duration model, a network
with latency and bandwidth, and a FIFO collector service at the 0-th
processor.  See DESIGN.md for why this substitution preserves the
behaviour Fig. 2 measures.
"""

from __future__ import annotations

from repro.cluster.events import EventQueue
from repro.cluster.machine import Accelerator, DurationModel, Processor
from repro.cluster.network import CollectorService, NetworkModel
from repro.cluster.simulation import (
    ClusterResult,
    ClusterSimulation,
    ClusterSpec,
    proportional_quotas,
)

__all__ = [
    "EventQueue",
    "DurationModel",
    "Processor",
    "Accelerator",
    "NetworkModel",
    "CollectorService",
    "ClusterSpec",
    "ClusterSimulation",
    "ClusterResult",
    "proportional_quotas",
]
