"""Cost models for processors and realization durations.

The Fig. 2 performance test reports a mean computer time of 7.7 seconds
per realization; these models supply such durations to the discrete-
event simulation, optionally with stochastic jitter and per-processor
speed heterogeneity (the situation §2.2 says requires no load balancing
because workers are independent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["DurationModel", "Processor", "Accelerator"]

_DISTRIBUTIONS = ("fixed", "exponential", "lognormal", "uniform")


@dataclass(frozen=True)
class DurationModel:
    """Sampler of per-realization compute durations.

    Attributes:
        mean: Mean duration ``tau`` in seconds (7.7 in the paper's test).
        distribution: ``"fixed"`` (deterministic), ``"exponential"``,
            ``"lognormal"`` or ``"uniform"``.
        spread: Dispersion parameter — the lognormal sigma, or the
            relative half-width for ``"uniform"``; ignored by the other
            distributions.
    """

    mean: float = 7.7
    distribution: str = "fixed"
    spread: float = 0.25

    def __post_init__(self) -> None:
        if self.mean <= 0.0:
            raise ConfigurationError(
                f"mean duration must be > 0, got {self.mean}")
        if self.distribution not in _DISTRIBUTIONS:
            raise ConfigurationError(
                f"unknown distribution {self.distribution!r}; choose "
                f"from {_DISTRIBUTIONS}")
        if self.spread < 0.0:
            raise ConfigurationError(
                f"spread must be >= 0, got {self.spread}")
        if self.distribution == "uniform" and self.spread >= 1.0:
            raise ConfigurationError(
                "uniform spread must be < 1 so durations stay positive")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one realization duration in seconds."""
        if self.distribution == "fixed":
            return self.mean
        if self.distribution == "exponential":
            return float(rng.exponential(self.mean))
        if self.distribution == "lognormal":
            # Parameterize so the mean equals self.mean for any sigma.
            sigma = self.spread
            mu = np.log(self.mean) - 0.5 * sigma * sigma
            return float(rng.lognormal(mu, sigma))
        low = self.mean * (1.0 - self.spread)
        high = self.mean * (1.0 + self.spread)
        return float(rng.uniform(low, high))


@dataclass(frozen=True)
class Accelerator:
    """A batch accelerator attached to a node (the paper's §5 GPU).

    The model is the standard GPU execution shape: realizations are
    simulated in SIMT batches, each kernel launch paying a fixed
    overhead, with per-realization time divided by a throughput factor.
    Small batches waste the device on launch overhead; large batches
    approach ``tau / speedup`` per realization — exactly the trade-off
    a PARMONC-on-GPU port would tune.

    Attributes:
        batch: Realizations executed per kernel launch.
        speedup: Per-realization throughput factor versus the CPU
            duration model (e.g. 50.0 for a mid-range accelerator).
        launch_overhead: Fixed seconds per kernel launch.
    """

    batch: int = 256
    speedup: float = 50.0
    launch_overhead: float = 1e-3

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ConfigurationError(
                f"batch must be >= 1, got {self.batch}")
        if self.speedup <= 0.0:
            raise ConfigurationError(
                f"speedup must be > 0, got {self.speedup}")
        if self.launch_overhead < 0.0:
            raise ConfigurationError(
                f"launch overhead must be >= 0, got "
                f"{self.launch_overhead}")

    def chunk_duration(self, chunk: int, base_duration: float) -> float:
        """Seconds to execute ``chunk`` realizations in one launch."""
        if chunk < 1:
            raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
        return self.launch_overhead + chunk * base_duration / self.speedup


@dataclass(frozen=True)
class Processor:
    """A simulated cluster node.

    Attributes:
        rank: Processor index (0 is also the collector).
        speed_factor: Relative speed; durations are divided by it, so a
            factor of 2.0 makes the node twice as fast.
        accelerator: Optional batch accelerator (GPU) — when present,
            the node executes realizations in batches via
            :meth:`Accelerator.chunk_duration` instead of one at a time.
    """

    rank: int
    speed_factor: float = 1.0
    accelerator: Accelerator | None = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"rank must be >= 0, got {self.rank}")
        if self.speed_factor <= 0.0:
            raise ConfigurationError(
                f"speed factor must be > 0, got {self.speed_factor}")

    @property
    def batch(self) -> int:
        """Realizations completed per execution event (1 without GPU)."""
        return self.accelerator.batch if self.accelerator else 1

    def duration(self, model: DurationModel,
                 rng: np.random.Generator) -> float:
        """Sample this node's next single-realization duration."""
        return model.sample(rng) / self.speed_factor

    def chunk_duration(self, chunk: int, model: DurationModel,
                       rng: np.random.Generator) -> float:
        """Sample the duration of the node's next ``chunk`` realizations."""
        base = model.sample(rng) / self.speed_factor
        if self.accelerator is None:
            if chunk != 1:
                raise ConfigurationError(
                    f"a CPU node executes one realization per event, "
                    f"requested chunk of {chunk}")
            return base
        return self.accelerator.chunk_duration(chunk, base)
