"""Network and collector-service cost models.

The paper's performance test sends ~120 KB per pass over a cluster
interconnect.  We model a message's life as: transfer delay (latency +
size/bandwidth) to reach the 0-th processor, then FIFO service at the
collector (deserialize + merge).  Rank 0's own messages skip the wire
but still pay the service time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["NetworkModel", "CollectorService"]


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point transfer cost model.

    Attributes:
        latency: Per-message latency in seconds (default 50 us, a
            typical cluster interconnect).
        bandwidth: Link bandwidth in bytes/second (default 1 GB/s).
    """

    latency: float = 50e-6
    bandwidth: float = 1e9

    def __post_init__(self) -> None:
        if self.latency < 0.0:
            raise ConfigurationError(
                f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0.0:
            raise ConfigurationError(
                f"bandwidth must be > 0, got {self.bandwidth}")

    def transfer_time(self, nbytes: int, local: bool = False) -> float:
        """Seconds for ``nbytes`` to reach the collector.

        ``local=True`` models rank 0 messaging itself: no wire, no cost.
        """
        if nbytes < 0:
            raise ConfigurationError(
                f"message size must be >= 0, got {nbytes}")
        if local:
            return 0.0
        return self.latency + nbytes / self.bandwidth


@dataclass
class CollectorService:
    """FIFO single-server model of the 0-th processor's receive path.

    Attributes:
        service_time: Seconds to ingest one message (deserialize and
            merge the moment matrices).
    """

    service_time: float = 200e-6

    def __post_init__(self) -> None:
        if self.service_time < 0.0:
            raise ConfigurationError(
                f"service time must be >= 0, got {self.service_time}")
        self._busy_until = 0.0
        self._busy_total = 0.0
        self._served = 0

    @property
    def served(self) -> int:
        """Messages fully processed so far."""
        return self._served

    @property
    def busy_total(self) -> float:
        """Cumulative seconds the server has spent processing."""
        return self._busy_total

    @property
    def busy_until(self) -> float:
        """Simulation time at which the server next becomes idle."""
        return self._busy_until

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the server was busy."""
        if horizon <= 0.0:
            return 0.0
        return min(1.0, self._busy_total / horizon)

    def admit(self, arrival: float) -> float:
        """Queue one message arriving at ``arrival``; return completion time.

        FIFO discipline: service starts when the server frees up.
        """
        if arrival < 0.0:
            raise ConfigurationError(
                f"arrival time must be >= 0, got {arrival}")
        start = max(arrival, self._busy_until)
        completion = start + self.service_time
        self._busy_until = completion
        self._busy_total += self.service_time
        self._served += 1
        return completion
