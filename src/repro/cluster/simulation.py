"""The PARMONC protocol on a simulated cluster.

Reproduces the paper's deployment mechanics in virtual time: ``M``
processors simulate realizations asynchronously; each completed
realization may trigger a cumulative moment pass to the 0-th processor
(``perpass = 0`` sends after *every* realization, the strictest Fig. 2
condition); messages cross a modelled network and queue FIFO at the
collector.  ``T_comp`` — the figure's y-axis — is the virtual time at
which the collector has received, averaged and saved the complete
sample.

Realizations can be *executed* (the user routine actually runs, with its
RNG substream, so the run produces genuine estimates) or merely
*accounted* (zero-matrix placeholders; only timing matters, which is how
the 512-processor sweeps stay cheap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.cluster.events import EventQueue
from repro.cluster.machine import Accelerator, DurationModel, Processor
from repro.cluster.network import CollectorService, NetworkModel
from repro.obs.telemetry import RunTelemetry, WorkerTelemetry
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.messages import (
    _HEADER_BYTES,
    CombinedMessage,
    MomentMessage,
    message_bytes,
)
from repro.runtime.reduction import ReducerNode, plan_reduction
from repro.runtime.worker import RealizationRoutine, adapt_realization
from repro.rng.streams import StreamTree
from repro.stats.statistic import StatisticSet

__all__ = ["ClusterSpec", "ClusterResult", "ClusterSimulation",
           "proportional_quotas"]


def proportional_quotas(total: int, weights: list[float] | tuple[float, ...]
                        ) -> list[int]:
    """Deal ``total`` realizations proportionally to throughput weights.

    The largest-remainder method: exact total, deviations of at most one
    realization per rank.  This is what a dynamic self-scheduling
    PARMONC deployment converges to on a heterogeneous or hybrid
    cluster, expressed as static quotas for the simulator.
    """
    if total < 0:
        raise ConfigurationError(f"total must be >= 0, got {total}")
    if not weights or any(w <= 0 for w in weights):
        raise ConfigurationError(
            "weights must be non-empty and strictly positive")
    scale = total / float(sum(weights))
    shares = [w * scale for w in weights]
    quotas = [int(share) for share in shares]
    remainders = sorted(range(len(weights)),
                        key=lambda i: shares[i] - quotas[i], reverse=True)
    for i in remainders[:total - sum(quotas)]:
        quotas[i] += 1
    return quotas


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware model of the simulated cluster.

    Attributes:
        duration_model: Per-realization compute-time sampler (the
            paper's ``tau ~ 7.7 s``).
        network: Transfer cost model for worker-to-collector messages.
        collector_service_time: Seconds the 0-th processor spends
            ingesting one message.
        reducer_service_time: Seconds an interior reducer node spends
            ingesting one child message when the run configures a
            reduction tree (``config.reduction_fanout``); None charges
            the collector's service time.  Reducers coalesce: each one
            forwards a single combined message upstream per busy
            period, so under load the collector serves O(fanout)
            streams of combined messages instead of O(M) worker
            passes — the topology this model exists to study at 10^5
            simulated workers.
        speed_factors: Optional per-rank relative speeds (heterogeneous
            cluster); length must equal the run's processor count.
        accelerators: Optional per-rank batch accelerators (§5's GPU /
            hybrid clusters); None entries are plain CPU nodes.  Length
            must equal the run's processor count when given.
        message_bytes: Wire size per pass; None derives it from the
            matrix shape via :func:`repro.runtime.messages.message_bytes`
            (the paper's 1000 x 2 problem gives ~125 KB).
        failures: Optional fault injection — ``{rank: fail_time}``.  A
            failed node stops silently: no further computation, passes
            or final message.  Work it completed after its last data
            pass is lost; everything already passed survives at the
            collector (the §2.2 motivation for periodic passes).
        seed: Seed of the simulator's own duration sampler — *not* part
            of the Monte Carlo sample.
    """

    duration_model: DurationModel = field(default_factory=DurationModel)
    network: NetworkModel = field(default_factory=NetworkModel)
    collector_service_time: float = 200e-6
    reducer_service_time: float | None = None
    speed_factors: tuple[float, ...] | None = None
    accelerators: tuple[Accelerator | None, ...] | None = None
    message_bytes: int | None = None
    failures: dict[int, float] | None = None
    seed: int = 2011

    def processors_for(self, count: int) -> list[Processor]:
        """Instantiate ``count`` processors with speeds and accelerators."""
        if self.speed_factors is not None \
                and len(self.speed_factors) != count:
            raise ConfigurationError(
                f"speed_factors has {len(self.speed_factors)} entries "
                f"for {count} processors")
        if self.accelerators is not None \
                and len(self.accelerators) != count:
            raise ConfigurationError(
                f"accelerators has {len(self.accelerators)} entries "
                f"for {count} processors")
        processors = []
        for rank in range(count):
            factor = (self.speed_factors[rank]
                      if self.speed_factors is not None else 1.0)
            accelerator = (self.accelerators[rank]
                           if self.accelerators is not None else None)
            processors.append(Processor(rank, factor, accelerator))
        return processors


@dataclass(frozen=True)
class ClusterResult:
    """Timing and accounting of one simulated run.

    Attributes:
        t_comp: Virtual seconds until the collector finished receiving,
            averaging and saving the full sample (Fig. 2's ``T_comp``).
        total_volume: Realizations delivered in this session.
        per_rank_volumes: Final volume per worker.
        messages_sent: Worker data passes (including finals).
        collector_utilization: Busy fraction of the collector server
            over ``[0, t_comp]``.
        mean_queue_delay: Mean seconds a message waited before service.
        compute_span: Virtual time the last worker finished computing
            (``t_comp`` minus trailing exchange overhead).
        failed_ranks: Nodes that died mid-run (fault injection).
        lost_realizations: Realizations computed but never delivered to
            the collector before their node failed.
        collector_served: Messages the 0-th processor's server actually
            ingested — equals ``messages_sent`` on the flat exchange,
            and the (much smaller) combined-message count under a
            reduction tree.
        combined_messages: Reducer forwards delivered to the collector
            (0 on the flat exchange).
        per_job: Per-job accounting when the simulation labelled its
            workers (``job_labels`` / ``add_worker(job=...)``): for
            each label, the ranks it owned, the realizations they
            computed (``volume``), the realizations that reached the
            collector (``delivered``) and the data passes they sent —
            the observables a scheduling-policy study at 10^5 simulated
            workers compares across tenants.  Empty when no worker was
            labelled.
    """

    t_comp: float
    total_volume: int
    per_rank_volumes: dict[int, int]
    messages_sent: int
    collector_utilization: float
    mean_queue_delay: float
    compute_span: float
    failed_ranks: tuple[int, ...] = ()
    lost_realizations: int = 0
    collector_served: int = 0
    combined_messages: int = 0
    per_job: dict[str, dict] = field(default_factory=dict)


class _ReducerStation:
    """One interior reducer node of the simulated reduction tree.

    A FIFO single-server (like the collector's model) that ingests its
    children's passes into a latest-per-rank pending map and flushes
    one combined message upstream whenever it goes idle — the
    coalescing that keeps upstream load bounded: under saturation a
    busy period absorbs many child passes and emits a single forward.
    """

    def __init__(self, simulation: "ClusterSimulation", node: ReducerNode,
                 service_time: float) -> None:
        self._simulation = simulation
        self.node = node
        self.service = CollectorService(service_time)
        self._pending: dict[int, MomentMessage] = {}
        self._drained = 0

    def admit(self, item: MomentMessage | CombinedMessage,
              arrival: float) -> None:
        """Queue one child message; schedules the flush at completion."""
        completion = self.service.admit(arrival)
        entries = (item.entries if isinstance(item, CombinedMessage)
                   else (item,))
        for entry in entries:
            self._drained += 1
            previous = self._pending.get(entry.rank)
            if (previous is not None
                    and entry.snapshot.volume < previous.snapshot.volume):
                continue
            self._pending[entry.rank] = entry
        self._simulation._events.schedule(
            completion, lambda when: self.flush(when))

    def flush(self, now: float) -> None:
        """Forward the pending batch if the server just went idle.

        While more child messages are in service the flush defers to
        their completion events — that is the coalescing window.
        """
        if not self._pending or self.service.busy_until > now + 1e-15:
            return
        entries = tuple(self._pending[rank]
                        for rank in sorted(self._pending))
        combined = CombinedMessage(
            node_id=self.node.node_id, entries=entries, sent_at=now,
            metrics={"level": self.node.level, "drained": self._drained})
        self._pending.clear()
        self._drained = 0
        self._simulation._forward(self.node, combined, now)


class ClusterSimulation:
    """Discrete-event execution of one PARMONC session.

    Args:
        config: Run configuration (processors, maxsv quotas, perpass,
            seqnum, shape, optional time_limit in *virtual* seconds).
        spec: Cluster hardware model.
        collector: The collector to feed; construct it with ``data=None``
            for pure timing studies or with a data directory for full
            runs.
        routine: Optional realization routine.  When given, every
            realization executes with its proper RNG substream and the
            collector accumulates genuine moments; when None, zero
            placeholder matrices keep the books.
        quotas: Optional per-rank realization quotas overriding the
            config's even split — use :func:`proportional_quotas` for
            heterogeneous/hybrid clusters.  Must sum to ``maxsv``.
        scheduling: ``"static"`` (default) deals fixed quotas;
            ``"dynamic"`` is self-scheduling — every worker keeps
            simulating until ``maxsv`` realizations have been *started*
            cluster-wide, so faster nodes naturally contribute more.
            This is the paper's actual §2.2 argument for needing no
            load balancer; quotas must not be given in this mode.
        telemetry: Optional :class:`~repro.obs.telemetry.RunTelemetry`
            stamped in *virtual* time: every realization chunk and
            message transfer becomes a span, worker stats piggyback on
            the simulated messages, and fault injections land in the
            event log — the Fig. 2 scaling study yields a full trace
            for free.
        job_labels: Optional per-rank job names (length must equal the
            processor count); labelled ranks are accounted per job on
            :attr:`ClusterResult.per_job`, so multi-tenant scheduling
            policies can be studied in virtual time.  The labels are
            bookkeeping only — they do not change execution.
    """

    def __init__(self, config: RunConfig, spec: ClusterSpec,
                 collector: Collector,
                 routine: RealizationRoutine | None = None,
                 quotas: list[int] | None = None,
                 scheduling: str = "static",
                 telemetry: RunTelemetry | None = None,
                 job_labels: Sequence[str | None] | None = None) -> None:
        if scheduling not in ("static", "dynamic"):
            raise ConfigurationError(
                f"scheduling must be 'static' or 'dynamic', "
                f"got {scheduling!r}")
        if scheduling == "dynamic" and quotas is not None:
            raise ConfigurationError(
                "dynamic scheduling and explicit quotas are mutually "
                "exclusive")
        self._config = config
        self._spec = spec
        self._collector = collector
        self._adapted = (adapt_realization(routine)
                         if routine is not None else None)
        self._batch_size = getattr(self._adapted, "batch_size", None)
        self._events = EventQueue()
        self._duration_rng = np.random.default_rng(spec.seed)
        self._processors = spec.processors_for(config.processors)
        self._service = CollectorService(spec.collector_service_time)
        tree = StreamTree(config.leaps)
        self._experiment = tree.experiment(config.seqnum)
        self._streams = [self._experiment.processor(rank)
                         for rank in range(config.processors)]
        self._statistics = [
            StatisticSet.for_run(config.statistics, config.nrow,
                                 config.ncol)
            for _ in range(config.processors)]
        self._accumulators = [statistics.moments
                              for statistics in self._statistics]
        # The cost model charges what a pass actually carries: the
        # moment payload plus every declared extra statistic.  For the
        # default moments-only run this is exactly the paper's Fig. 2
        # accounting.
        self._nbytes = (spec.message_bytes if spec.message_bytes is not None
                        else message_bytes(config.nrow, config.ncol,
                                           self._statistics[0].extras))
        # The reduction topology (flat unless config.reduction_fanout):
        # worker passes route through simulated reducer stations that
        # coalesce before the collector's server ever sees them.
        plan = plan_reduction(range(config.processors),
                              config.reduction_fanout)
        reducer_service = (spec.reducer_service_time
                           if spec.reducer_service_time is not None
                           else spec.collector_service_time)
        self._reducers = {
            node.node_id: _ReducerStation(self, node, reducer_service)
            for node in plan.nodes}
        self._leaf_parents = dict(plan.leaf_parents)
        self._combined_delivered = 0
        self._next_index = [0] * config.processors
        self._scheduling = scheduling
        self._total_started = 0
        self._last_send = [0.0] * config.processors
        self._failures = dict(spec.failures or {})
        if 0 in self._failures:
            raise ConfigurationError(
                "failing the 0-th processor kills the collector; model "
                "collector-side crashes with manaver recovery instead")
        for rank, fail_time in self._failures.items():
            if not 0 <= rank < config.processors:
                raise ConfigurationError(
                    f"failure injected for unknown rank {rank}")
            if fail_time < 0.0:
                raise ConfigurationError(
                    f"failure time must be >= 0, got {fail_time}")
        self._finaled: set[int] = set()
        if quotas is None:
            self._quotas = [config.worker_quota(rank)
                            for rank in range(config.processors)]
        else:
            if len(quotas) != config.processors:
                raise ConfigurationError(
                    f"{len(quotas)} quotas given for "
                    f"{config.processors} processors")
            if any(q < 0 for q in quotas) or sum(quotas) != config.maxsv:
                raise ConfigurationError(
                    f"quotas must be non-negative and sum to maxsv="
                    f"{config.maxsv}, got sum {sum(quotas)}")
            self._quotas = list(quotas)
        if job_labels is not None and len(job_labels) != config.processors:
            raise ConfigurationError(
                f"job_labels has {len(job_labels)} entries for "
                f"{config.processors} processors")
        self._job_labels: list[str | None] = (
            list(job_labels) if job_labels is not None
            else [None] * config.processors)
        self._rank_messages = [0] * config.processors
        self._zero = np.zeros(config.shape)
        self._messages_sent = 0
        self._queue_delay_total = 0.0
        self._last_completion = 0.0
        self._last_compute = 0.0
        self._telemetry = telemetry
        self._worker_stats = (
            [WorkerTelemetry(rank, clock=lambda: self._events.now)
             for rank in range(config.processors)]
            if telemetry is not None else None)
        self._failures_logged: set[int] = set()
        self._result: ClusterResult | None = None

    @property
    def now(self) -> float:
        """Current virtual time (drives the telemetry clock)."""
        return self._events.now

    # ------------------------------------------------------------------

    def _start_realization(self, rank: int, now: float) -> None:
        """Schedule the completion of rank's next realization chunk.

        CPU nodes complete one realization per event; accelerated nodes
        complete up to their batch width per kernel launch.
        """
        deadline = self._config.time_limit
        if deadline is not None and now >= deadline:
            self._send(rank, now, final=True)
            return
        if self._scheduling == "dynamic":
            remaining = self._config.maxsv - self._total_started
        else:
            remaining = self._quotas[rank] - self._next_index[rank]
        if remaining <= 0:
            self._send(rank, now, final=True)
            return
        processor = self._processors[rank]
        chunk = min(processor.batch, remaining)
        self._total_started += chunk
        duration = processor.chunk_duration(
            chunk, self._spec.duration_model, self._duration_rng)
        self._events.schedule(
            now + duration,
            lambda when, r=rank, c=chunk, s=now:
                self._complete_chunk(r, c, when, started=s))

    def _dead(self, rank: int, now: float) -> bool:
        """Whether rank has failed by simulation time ``now``."""
        fail_time = self._failures.get(rank)
        if fail_time is not None and now >= fail_time:
            self._note_failure(rank, fail_time)
            return True
        return False

    def _note_failure(self, rank: int, fail_time: float) -> None:
        """Log an injected node failure once, stamped at its fail time."""
        if self._telemetry is None or rank in self._failures_logged:
            return
        self._failures_logged.add(rank)
        self._telemetry.events.append(
            "node_failed", ts=fail_time, rank=rank,
            delivered_volume=self._collector.worker_volume(rank),
            computed_volume=self._accumulators[rank].volume)

    def _complete_chunk(self, rank: int, chunk: int, now: float,
                        started: float | None = None) -> None:
        """A chunk finished: accumulate, maybe pass data, go on."""
        if self._dead(rank, now):
            # The node died while computing: the in-flight chunk (and
            # everything since its last pass) is lost.
            return
        widths: list[int] = []
        if self._batch_size is not None:
            start = self._next_index[rank]
            self._next_index[rank] = start + chunk
            done = 0
            while done < chunk:
                width = min(self._batch_size, chunk - done)
                streams = self._streams[rank].realization_block(
                    start + done, width)
                self._statistics[rank].update_batch(self._adapted(streams))
                widths.append(width)
                done += width
        else:
            for _ in range(chunk):
                index = self._next_index[rank]
                self._next_index[rank] = index + 1
                if self._adapted is not None:
                    rng = self._streams[rank].realization(index)
                    result = self._adapted(rng)
                else:
                    result = self._zero
                self._statistics[rank].update(result)
        self._last_compute = max(self._last_compute, now)
        if self._worker_stats is not None:
            begun = started if started is not None else now
            stats = self._worker_stats[rank]
            stats.add_realizations(chunk, now - begun)
            if widths:
                stats.batches += len(widths)
                stats.max_batch = max(stats.max_batch, max(widths))
            self._telemetry.tracer.record("worker.chunk", begun, now,
                                          rank=rank, chunk=chunk)
        if (self._config.perpass == 0.0
                or now - self._last_send[rank] >= self._config.perpass):
            self._send(rank, now, final=False)
        self._start_realization(rank, now)

    def _send(self, rank: int, now: float, final: bool) -> None:
        """Ship rank's cumulative snapshot towards the collector."""
        if self._dead(rank, now):
            return
        if final:
            self._finaled.add(rank)
        metrics = None
        if self._worker_stats is not None:
            stats = self._worker_stats[rank]
            stats.message(self._nbytes)
            metrics = stats.as_dict(now=now)
        message = MomentMessage(
            rank=rank, snapshot=self._accumulators[rank].snapshot(),
            sent_at=now, final=final, metrics=metrics,
            statistics=self._statistics[rank].extras_snapshot())
        self._messages_sent += 1
        self._rank_messages[rank] += 1
        self._last_send[rank] = now
        node_id = self._leaf_parents.get(rank)
        if node_id is not None:
            # Tree topology: the pass crosses the wire to the subtree's
            # reducer, which coalesces before anything reaches rank 0.
            arrival = now + self._spec.network.transfer_time(
                self._nbytes, local=False)
            self._reducers[node_id].admit(message, arrival)
            if self._telemetry is not None:
                self._telemetry.tracer.record(
                    "message.transfer", now, arrival, rank=rank,
                    bytes=self._nbytes, final=final, via=node_id)
                if final:
                    self._telemetry.events.append(
                        "worker_final", ts=now, rank=rank,
                        volume=self._accumulators[rank].volume,
                        messages=self._worker_stats[rank].messages,
                        bytes=self._worker_stats[rank].bytes_sent)
            return
        arrival = now + self._spec.network.transfer_time(
            self._nbytes, local=(rank == 0))
        completion = self._service.admit(arrival)
        self._queue_delay_total += completion \
            - self._service.service_time - arrival
        if self._telemetry is not None:
            self._telemetry.tracer.record(
                "message.transfer", now, completion, rank=rank,
                bytes=self._nbytes, final=final,
                queue_delay=max(
                    completion - self._service.service_time - arrival, 0.0))
            if final:
                self._telemetry.events.append(
                    "worker_final", ts=now, rank=rank,
                    volume=self._accumulators[rank].volume,
                    messages=self._worker_stats[rank].messages,
                    bytes=self._worker_stats[rank].bytes_sent)
        self._events.schedule(
            completion,
            lambda when, m=message: self._deliver(m, when))

    def _deliver(self, message: MomentMessage, now: float) -> None:
        """Collector finished ingesting a message."""
        self._collector.receive(message, now)
        self._last_completion = max(self._last_completion, now)

    def _forward(self, node: ReducerNode, combined: CombinedMessage,
                 now: float) -> None:
        """Route a reducer's combined forward one hop upstream.

        The wire charges one framing header plus the coalesced
        payloads; the receiving server (parent reducer or the
        collector) charges a single service — the per-message fixed
        cost the tree amortizes.
        """
        nbytes = (_HEADER_BYTES
                  + len(combined.entries) * max(self._nbytes
                                                - _HEADER_BYTES, 0))
        arrival = now + self._spec.network.transfer_time(nbytes,
                                                         local=False)
        if node.parent is not None:
            self._reducers[node.parent].admit(combined, arrival)
            return
        completion = self._service.admit(arrival)
        self._queue_delay_total += completion \
            - self._service.service_time - arrival
        if self._telemetry is not None:
            self._telemetry.tracer.record(
                "message.transfer", now, completion, node=node.node_id,
                bytes=nbytes, entries=len(combined.entries),
                queue_delay=max(
                    completion - self._service.service_time - arrival, 0.0))
        self._events.schedule(
            completion,
            lambda when, m=combined: self._deliver_combined(m, when))

    def _deliver_combined(self, combined: CombinedMessage,
                          now: float) -> None:
        """Collector finished ingesting a reducer forward."""
        self._combined_delivered += 1
        self._collector.receive_combined(combined, now)
        self._last_completion = max(self._last_completion, now)

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Seed every configured worker's first realization at t = 0.

        The incremental half of :meth:`run`, used by the engine-driven
        backend (which owns the ``worker_start`` telemetry events
        itself): after seeding, drive the clock with
        :meth:`run_until_idle` and settle accounts with :meth:`finish`.
        """
        for rank in range(self._config.processors):
            self._start_realization(rank, 0.0)

    def run_until_idle(self) -> float:
        """Dispatch events until the queue drains; return virtual now."""
        return self._events.run()

    def add_worker(self, rank: int, quota: int,
                   job: str | None = None) -> None:
        """Attach a fresh worker mid-simulation (quota reassignment).

        The new node is a plain unit-speed processor drawing from the
        ``rank``-th "processors" subsequence — a substream no failed
        node ever touched — and starts computing at the current virtual
        time.  ``job`` labels the worker for the
        :attr:`ClusterResult.per_job` breakdown (e.g. the failed
        worker's job, so the recovery volume is charged to the right
        tenant).
        """
        if self._scheduling != "static":
            raise ConfigurationError(
                "workers can only be added under static scheduling")
        if rank != len(self._processors):
            raise ConfigurationError(
                f"worker ranks must stay contiguous: expected "
                f"{len(self._processors)}, got {rank}")
        now = self._events.now
        self._processors.append(Processor(rank, 1.0, None))
        self._streams.append(self._experiment.processor(rank))
        self._statistics.append(
            StatisticSet.for_run(self._config.statistics,
                                 self._config.nrow, self._config.ncol))
        self._accumulators.append(self._statistics[-1].moments)
        self._next_index.append(0)
        self._last_send.append(now)
        self._quotas.append(quota)
        self._job_labels.append(job)
        self._rank_messages.append(0)
        if self._worker_stats is not None:
            self._worker_stats.append(
                WorkerTelemetry(rank, clock=lambda: self._events.now))
        self._result = None
        self._start_realization(rank, now)

    def dead_ranks(self) -> tuple[int, ...]:
        """Injected failures that kept their node from finalizing."""
        return tuple(sorted(rank for rank in self._failures
                            if rank not in self._finaled))

    def finish(self) -> ClusterResult:
        """Settle the books once the event queue has drained.

        Idempotent between topology changes: calling it twice returns
        the same (cached) result; :meth:`add_worker` invalidates the
        cache so a recovered run re-accounts.
        """
        if self._result is not None:
            return self._result
        for rank, fail_time in self._failures.items():
            self._note_failure(rank, fail_time)
        survivors = [rank for rank in range(len(self._processors))
                     if rank not in self._failures]
        if not all(rank in self._finaled for rank in survivors):
            raise ConfigurationError(
                "simulation drained its event queue before every "
                "surviving worker finalized — this indicates an "
                "internal protocol bug")
        t_comp = self._last_completion
        per_rank = {rank: self._accumulators[rank].volume
                    for rank in range(len(self._processors))}
        total = sum(per_rank.values())
        lost = sum(self._accumulators[rank].volume
                   - self._collector.worker_volume(rank)
                   for rank in self._failures)
        mean_delay = (self._queue_delay_total / self._messages_sent
                      if self._messages_sent else 0.0)
        per_job: dict[str, dict] = {}
        for rank, label in enumerate(self._job_labels):
            if label is None:
                continue
            entry = per_job.setdefault(
                label, {"ranks": [], "volume": 0, "delivered": 0,
                        "messages": 0})
            entry["ranks"].append(rank)
            entry["volume"] += per_rank[rank]
            entry["delivered"] += self._collector.worker_volume(rank)
            entry["messages"] += self._rank_messages[rank]
        for entry in per_job.values():
            entry["ranks"] = tuple(entry["ranks"])
        self._result = ClusterResult(
            t_comp=t_comp,
            total_volume=total,
            per_rank_volumes=per_rank,
            messages_sent=self._messages_sent,
            collector_utilization=self._service.utilization(t_comp),
            mean_queue_delay=mean_delay,
            compute_span=self._last_compute,
            failed_ranks=tuple(sorted(self._failures)),
            lost_realizations=lost,
            collector_served=self._service.served,
            combined_messages=self._combined_delivered,
            per_job=per_job)
        return self._result

    def run(self) -> ClusterResult:
        """Execute the session; return virtual-time accounting."""
        for rank in range(self._config.processors):
            if self._telemetry is not None:
                self._telemetry.events.append(
                    "worker_start", ts=0.0, rank=rank,
                    quota=(self._quotas[rank]
                           if self._scheduling == "static" else None))
            self._start_realization(rank, 0.0)
        self._events.run()
        result = self.finish()
        # The final averaging-and-saving sweep the paper times.
        self._collector.save(result.t_comp)
        return result
