"""The ``parmonc-report`` command: summarize a run's result files.

Reads the ``parmonc_data`` directory of §3.6 and prints a human
summary: the run log, the experiment registry, the shape and corner of
the mean matrix, the worst errors, and the resumability status.

With ``--telemetry`` the report also renders the run's observability
artifacts (``telemetry/events.jsonl`` + ``metrics.json``, written by
telemetry-enabled runs; see ``docs/observability.md``).

Usage::

    $ parmonc-report [--workdir DIR] [--rows N] [--telemetry]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.exceptions import ConfigurationError, ReproError, ResumeError
from repro.obs.render import render_telemetry
from repro.runtime.engine import available_backends
from repro.runtime.files import DataDirectory
from repro.stats.statistic import Covariance, Histogram, Statistic

__all__ = ["main", "render_report"]

#: Glyph ramp for the histogram sparkline (space = empty bin).
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _sparkline(counts) -> str:
    """Render bin counts as a one-line unicode sparkline."""
    counts = [int(count) for count in counts]
    peak = max(counts, default=0)
    if peak <= 0:
        return "(no in-range samples)"
    glyphs = []
    for count in counts:
        if count == 0:
            glyphs.append(" ")
            continue
        level = int(count * (len(_SPARK_LEVELS) - 1) / peak)
        glyphs.append(_SPARK_LEVELS[level])
    return "".join(glyphs)


def _render_statistic(kind: str, statistic: Statistic) -> list[str]:
    """Lines for one merged extra statistic of the save-point."""
    description = statistic.describe()
    if not description.startswith(kind):
        description = f"{kind}: {description}"
    lines = [f"  {description}"]
    if isinstance(statistic, Histogram):
        edges = statistic.bin_edges
        lines.append("    " + _sparkline(statistic.bin_counts))
        lines.append(
            f"    range [{edges[0]:g}, {edges[-1]:g}) over "
            f"{statistic.bins} bins; underflow={statistic.underflow}, "
            f"overflow={statistic.overflow}")
    elif isinstance(statistic, Covariance) and statistic.volume >= 2:
        matrix = statistic.accumulator.covariance()
        preview = min(4, matrix.shape[0])
        lines.append(f"    covariance matrix "
                     f"{matrix.shape[0]}x{matrix.shape[1]}"
                     + (f", first {preview}x{preview}:"
                        if matrix.shape[0] > preview else ":"))
        for row in matrix[:preview]:
            lines.append("      " + " ".join(f"{value: .4e}"
                                             for value in row[:preview])
                         + (" ..." if matrix.shape[1] > preview else ""))
    return lines


def render_report(workdir: Path, rows: int = 5,
                  telemetry: bool = False) -> str:
    """Build the report text for a ``parmonc_data`` directory.

    Args:
        workdir: Directory containing ``parmonc_data``.
        rows: Matrix rows to preview.
        telemetry: Append the telemetry view (metrics, spans, events)
            when the run recorded one.

    Raises:
        ReproError: If no results exist under ``workdir``.
    """
    data = DataDirectory(workdir)
    if not data.root.exists():
        raise ReproError(f"no parmonc_data directory under {workdir}")
    lines = [f"PARMONC run summary — {data.root}", "=" * 60,
             "registered backends: " + ", ".join(available_backends())]
    try:
        log = data.read_log()
    except ResumeError:
        log = {}
    if log:
        lines.append("run log (func_log.dat):")
        for key in ("total_sample_volume", "matrix_shape",
                    "mean_time_per_realization_sec",
                    "abs_error_upper_bound",
                    "rel_error_upper_bound_percent", "seqnum",
                    "processors", "sessions", "written_at"):
            if key in log:
                lines.append(f"  {key:<34s} {log[key]}")
    else:
        lines.append("no result files yet (run still in flight, or "
                     "recover with manaver)")
    try:
        mean = data.read_mean_matrix()
        lines.append("")
        lines.append(f"sample means (func.dat), shape "
                     f"{mean.shape[0]}x{mean.shape[1]}, first rows:")
        for row in mean[:rows]:
            lines.append("  " + " ".join(f"{value: .6e}"
                                         for value in row[:6])
                         + (" ..." if mean.shape[1] > 6 else ""))
        if mean.shape[0] > rows:
            lines.append(f"  ... ({mean.shape[0] - rows} more rows)")
    except ResumeError:
        pass
    registry = data.read_registry()
    if registry:
        lines.append("")
        lines.append(f"experiments started ({len(registry)}):")
        for entry in registry[-5:]:
            lines.append(f"  {entry}")
        if len(registry) > 5:
            lines.append(f"  ... ({len(registry) - 5} earlier entries)")
    lines.append("")
    absorbed = None
    if data.has_savepoint():
        try:
            snapshot, meta = data.load_savepoint()
        except ResumeError as exc:
            lines.append(f"resumable: no — merged save-point is corrupt "
                         f"and was quarantined ({exc})")
        else:
            absorbed = meta.sessions
            lines.append(
                f"resumable: yes — merged save-point holds "
                f"{snapshot.volume} realizations over {meta.sessions} "
                f"session(s); next free seqnum is "
                f"{max(meta.used_seqnums) + 1 if meta.used_seqnums else 0}")
            if meta.statistics:
                lines.append("")
                lines.append("extra statistics (merged):")
                for kind in sorted(meta.statistics):
                    lines.extend(_render_statistic(kind,
                                                   meta.statistics[kind]))
            if meta.unknown_statistics:
                lines.append(
                    "NOTE: save-point carries statistics of unregistered "
                    "kind(s) " + ", ".join(meta.unknown_statistics)
                    + " — payloads preserved but not rendered (register "
                    "the kind to see them)")
    else:
        lines.append("resumable: no merged save-point present")
    pending = data.load_processor_snapshots(absorbed_sessions=absorbed)
    if pending:
        recoverable = sum(s.volume for s in pending.values())
        lines.append(
            f"NOTE: {len(pending)} processor save-point(s) with "
            f"{recoverable} realizations await `manaver` recovery")
    quarantined = data.quarantined_files()
    if quarantined:
        lines.append(
            f"WARNING: {len(quarantined)} quarantined artifact(s) "
            f"(*.corrupt) under {data.root}:")
        for path in quarantined[:5]:
            lines.append(f"  {path.relative_to(data.root)}")
        if len(quarantined) > 5:
            lines.append(f"  ... ({len(quarantined) - 5} more)")
    if telemetry:
        lines.append("")
        try:
            lines.append(render_telemetry(data.telemetry_dir))
        except ConfigurationError as exc:
            lines.append(f"telemetry: {exc}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Build the parmonc-report argument parser."""
    parser = argparse.ArgumentParser(
        prog="parmonc-report",
        description="Summarize the result files of a PARMONC run.")
    parser.add_argument("--workdir", type=Path, default=Path.cwd(),
                        help="directory containing parmonc_data")
    parser.add_argument("--rows", type=int, default=5,
                        help="matrix rows to preview")
    parser.add_argument("--telemetry", action="store_true",
                        help="append the run's telemetry view (metrics, "
                             "spans, events)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        print(render_report(args.workdir, rows=max(1, args.rows),
                            telemetry=args.telemetry))
    except ReproError as exc:
        print(f"parmonc-report: error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
