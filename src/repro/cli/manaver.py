"""The ``manaver`` command (§3.4): manual averaging after a killed job.

When a cluster job is terminated, the result files may lag behind the
subtotals the workers had already delivered.  ``manaver`` merges the
per-processor save-points (plus the previous sessions' merged
save-point, if any) and rewrites the result files so that no simulated
realization is lost.

Usage::

    $ manaver [--workdir DIR]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import re

from repro.exceptions import ReproError
from repro.runtime.files import DataDirectory
from repro.stats.merging import merge_snapshots

__all__ = ["main", "manual_average"]

_SEQNUM_PATTERN = re.compile(r"\bseqnum=(\d+)\b")


def _registry_seqnums(data: DataDirectory) -> set[int]:
    """Every seqnum ever registered in parmonc_exp.dat.

    The registry is the one record that survives a crash *before* the
    save-point was rewritten, so it is the authoritative source for
    which experiments subsequences are burnt.
    """
    seqnums = set()
    for line in data.read_registry():
        match = _SEQNUM_PATTERN.search(line)
        if match:
            seqnums.add(int(match.group(1)))
    return seqnums


def manual_average(workdir: Path) -> dict:
    """Merge save-points under ``workdir`` and rewrite result files.

    Returns a summary dict: total volume, processors recovered, and
    whether a previous-session base was included.

    Raises:
        ReproError: When no save-points exist at all.
    """
    data = DataDirectory(workdir)
    snapshots = []
    base_included = False
    sessions = 1
    if data.has_savepoint():
        base, meta = data.load_savepoint()
        snapshots.append(base)
        base_included = True
        sessions = meta.sessions
    processor_snapshots = data.load_processor_snapshots()
    snapshots.extend(processor_snapshots.values())
    if not snapshots:
        raise ReproError(
            f"no save-points found under {data.root}; nothing to average")
    if processor_snapshots:
        # The subtotals belong to a session that never finalized;
        # count it.
        sessions += 1 if base_included else 0
    merged = merge_snapshots(snapshots)
    if merged.volume == 0:
        raise ReproError(
            "save-points contain zero realizations; nothing to average")
    # Burnt experiments subsequences: the savepoint's record plus
    # everything the registry saw (which covers the crashed session).
    used = set(meta.used_seqnums) if base_included else set()
    used |= _registry_seqnums(data)
    seqnum = max(used) if used else -1
    data.write_results(merged.estimates(), seqnum=seqnum,
                       processors=len(processor_snapshots),
                       sessions=sessions)
    # Persist the recovered total so a later res=1 session resumes from
    # the *full* sample, then drop the now-absorbed subtotals.
    data.save_savepoint(merged, used_seqnums=tuple(sorted(used)),
                        sessions=sessions)
    data.clear_processor_snapshots()
    return {
        "volume": merged.volume,
        "processors_recovered": len(processor_snapshots),
        "base_included": base_included,
        "results_dir": data.results_dir,
    }


def build_parser() -> argparse.ArgumentParser:
    """Build the manaver argument parser."""
    parser = argparse.ArgumentParser(
        prog="manaver",
        description="Average subtotal sample moments left by a terminated "
                    "job and rewrite the result files (PARMONC "
                    "section 3.4).")
    parser.add_argument("--workdir", type=Path, default=Path.cwd(),
                        help="directory containing parmonc_data "
                             "(default: current directory)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        summary = manual_average(args.workdir)
    except ReproError as exc:
        print(f"manaver: error: {exc}", file=sys.stderr)
        return 2
    print(f"recovered {summary['volume']} realizations from "
          f"{summary['processors_recovered']} processor save-point(s)"
          + (" plus the previous sessions' base"
             if summary["base_included"] else ""))
    print(f"results written under {summary['results_dir']}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
