"""The ``manaver`` command (§3.4): manual averaging after a killed job.

When a cluster job is terminated, the result files may lag behind the
subtotals the workers had already delivered.  ``manaver`` merges the
per-processor save-points (plus the previous sessions' merged
save-point, if any) and rewrites the result files so that no simulated
realization is lost.

Recovery is best-effort by design: a torn or checksum-failing artifact
is quarantined (renamed ``*.corrupt``) and skipped with a warning, so
one bad file never costs the realizations every other file still
holds.  Stale ``*.tmp`` files stranded by the crash are swept first.

Usage::

    $ manaver [--workdir DIR]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

from repro.exceptions import ReproError, ResumeError
from repro.runtime.files import DataDirectory
from repro.stats.merging import merge_snapshots, merge_statistic_maps

__all__ = ["main", "manual_average"]

_SEQNUM_PATTERN = re.compile(r"\bseqnum=(\d+)\b")


def _registry_seqnums(data: DataDirectory) -> set[int]:
    """Every seqnum ever registered in parmonc_exp.dat.

    The registry is the one record that survives a crash *before* the
    save-point was rewritten, so it is the authoritative source for
    which experiments subsequences are burnt.
    """
    seqnums = set()
    for line in data.read_registry():
        match = _SEQNUM_PATTERN.search(line)
        if match:
            seqnums.add(int(match.group(1)))
    return seqnums


def manual_average(workdir: Path) -> dict:
    """Merge save-points under ``workdir`` and rewrite result files.

    Returns a summary dict: total volume, processors recovered, whether
    a previous-session base was included, quarantined artifacts, any
    recovery warnings, and the merged extra-statistic map (recovered
    from the same subtotals and persisted with the save-point).

    Raises:
        ReproError: When no usable save-points exist at all.
    """
    data = DataDirectory(workdir)
    data.sweep_temp_files()
    quarantined_before = len(data.quarantined_files())
    warnings: list[str] = []
    snapshots = []
    base_included = False
    meta = None
    if data.has_savepoint():
        try:
            base, meta = data.load_savepoint()
        except ResumeError as exc:
            # The merged base is torn (load_savepoint quarantined it);
            # the per-processor subtotals are still recoverable.
            warnings.append(f"merged save-point unusable, skipped: {exc}")
        else:
            snapshots.append(base)
            base_included = True
    # Subtotals already folded into the merged base (crash between the
    # save-point rename and the subtotal cleanup) must not be merged a
    # second time — their session tag says who absorbed them.
    absorbed = meta.sessions if base_included else None
    subtotals = data.load_processor_subtotals(absorbed_sessions=absorbed)
    processor_snapshots = {rank: subtotal.snapshot
                           for rank, subtotal in subtotals.items()}
    snapshots.extend(snapshot for _, snapshot
                     in sorted(processor_snapshots.items()))
    # Extra statistics merge exactly like the moments: the previous
    # sessions' merged map first, then each rank's latest subtotal in
    # rank order — the same fixed fold the collector uses.
    statistic_maps = [dict(meta.statistics)] if base_included else []
    statistic_maps.extend(subtotal.statistics for _, subtotal
                          in sorted(subtotals.items()))
    statistics = merge_statistic_maps(statistic_maps)
    unknown_payloads = dict(meta.unknown_payloads) if base_included else {}
    if base_included and meta.unknown_statistics:
        warnings.append(
            "save-point carries statistics of unregistered kind(s) "
            + ", ".join(meta.unknown_statistics)
            + "; their payloads are preserved verbatim but not merged")
    quarantined = len(data.quarantined_files()) - quarantined_before
    if quarantined:
        warnings.append(
            f"{quarantined} corrupt artifact(s) quarantined as *.corrupt "
            f"and excluded from the recovered sample")
    if not snapshots:
        raise ReproError(
            f"no save-points found under {data.root}; nothing to average")
    # Session accounting: finalized sessions live in the save-point
    # meta; subtotals belong to a session that never finalized; and the
    # registry has one line per *started* experiment, which also covers
    # crashed sessions that left neither a base nor subtotals.
    sessions = (meta.sessions if base_included else 0)
    sessions += 1 if processor_snapshots else 0
    sessions = max(sessions, len(data.read_registry()), 1)
    merged = merge_snapshots(snapshots)
    if merged.volume == 0:
        raise ReproError(
            "save-points contain zero realizations; nothing to average")
    # Burnt experiments subsequences: the savepoint's record plus
    # everything the registry saw (which covers the crashed session).
    used = set(meta.used_seqnums) if base_included else set()
    used |= _registry_seqnums(data)
    seqnum = max(used) if used else -1
    # Processor count: the crashed session's subtotals when present,
    # else the count the save-point manifest recorded for its session —
    # never a misleading 0 just because every subtotal was absorbed.
    manifest = meta.manifest if meta is not None else None
    processors = len(processor_snapshots)
    if processors == 0 and meta is not None and meta.processors:
        processors = meta.processors
    data.write_results(merged.estimates(), seqnum=seqnum,
                       processors=processors,
                       sessions=sessions)
    # Persist the recovered total so a later res=1 session resumes from
    # the *full* sample, then drop the now-absorbed subtotals.  The
    # previous manifest rides along so the leap-parameter guard keeps
    # protecting future resumes.
    data.save_savepoint(merged, used_seqnums=tuple(sorted(used)),
                        sessions=sessions, manifest=manifest,
                        statistics=statistics,
                        extra_payloads=unknown_payloads)
    data.clear_processor_snapshots()
    return {
        "volume": merged.volume,
        "processors_recovered": len(processor_snapshots),
        "base_included": base_included,
        "quarantined": quarantined,
        "warnings": warnings,
        "results_dir": data.results_dir,
        "statistics": statistics,
    }


def build_parser() -> argparse.ArgumentParser:
    """Build the manaver argument parser."""
    parser = argparse.ArgumentParser(
        prog="manaver",
        description="Average subtotal sample moments left by a terminated "
                    "job and rewrite the result files (PARMONC "
                    "section 3.4).")
    parser.add_argument("--workdir", type=Path, default=Path.cwd(),
                        help="directory containing parmonc_data "
                             "(default: current directory)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        summary = manual_average(args.workdir)
    except ReproError as exc:
        print(f"manaver: error: {exc}", file=sys.stderr)
        return 2
    for warning in summary["warnings"]:
        print(f"manaver: warning: {warning}", file=sys.stderr)
    print(f"recovered {summary['volume']} realizations from "
          f"{summary['processors_recovered']} processor save-point(s)"
          + (" plus the previous sessions' base"
             if summary["base_included"] else ""))
    for kind in sorted(summary["statistics"]):
        statistic = summary["statistics"][kind]
        print(f"recovered statistic {kind}: L={statistic.volume}")
    print(f"results written under {summary['results_dir']}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
