"""The ``parmonc-rngtest`` command: certify the generator installation.

Runs the full quality portfolio against the configured generator (the
defaults, or the hierarchy from a ``parmonc_genparam.dat`` in the
working directory): the twelve-test statistical battery on the general
sequence, the two-level substream certificate, and the spectral test
of the multiplier.  Exit code 0 means every check passed — the
reproduction's equivalent of the paper's "well tested, fast and
reliable" stamp.

Usage::

    $ parmonc-rngtest [--draws N] [--substreams K] [--workdir DIR]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.exceptions import ReproError
from repro.rng.multiplier import BASE_MULTIPLIER, MODULUS, LeapSet
from repro.rng.spectral import spectral_report
from repro.rng.streams import StreamTree
from repro.rng.testing import run_battery, two_level_substream_test
from repro.rng.vectorized import VectorLcg128
from repro.runtime.files import read_genparam_file

__all__ = ["main", "certify"]


def certify(draws: int = 100_000, substreams: int = 32,
            workdir: Path | str = ".",
            alpha: float = 0.01) -> tuple[bool, str]:
    """Run the full certification; return ``(all_passed, report_text)``."""
    stored = read_genparam_file(workdir)
    if stored is not None:
        leaps = LeapSet(experiment_exponent=stored["ne_exponent"],
                        processor_exponent=stored["np_exponent"],
                        realization_exponent=stored["nr_exponent"])
        source = "parmonc_genparam.dat"
    else:
        leaps = LeapSet()
        source = "defaults"
    tree = StreamTree(leaps)
    lines = [f"generator certification ({source}: leaps 2^"
             f"{leaps.experiment_exponent}/2^{leaps.processor_exponent}"
             f"/2^{leaps.realization_exponent})", ""]
    verdicts = []

    battery = run_battery(VectorLcg128(1).uniforms(draws),
                          "general sequence", alpha=alpha)
    lines.append(battery.render())
    verdicts.append(battery.all_passed)

    per_stream = max(1000, draws // substreams)
    two_level = two_level_substream_test(
        tree, n_substreams=substreams, draws_per_stream=per_stream,
        alpha=alpha)
    lines.append("")
    lines.append(str(two_level))
    verdicts.append(two_level.passed)

    spectral = spectral_report(BASE_MULTIPLIER, MODULUS,
                               dimensions=(2, 3, 4, 5, 6))
    lines.append("")
    lines.append(spectral.render())
    spectral_ok = spectral.worst > 0.1
    lines.append(f"  worst merit {spectral.worst:.4f} "
                 f"({'pass' if spectral_ok else 'FAIL'}; "
                 f"defect threshold 0.1)")
    verdicts.append(spectral_ok)

    all_passed = all(verdicts)
    lines.append("")
    lines.append("certification: " + ("PASSED" if all_passed
                                      else "FAILED"))
    return all_passed, "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Build the parmonc-rngtest argument parser."""
    parser = argparse.ArgumentParser(
        prog="parmonc-rngtest",
        description="Statistical and spectral certification of the "
                    "parallel generator.")
    parser.add_argument("--draws", type=int, default=100_000,
                        help="battery sample size (default 100000)")
    parser.add_argument("--substreams", type=int, default=32,
                        help="substreams for the two-level certificate")
    parser.add_argument("--workdir", type=Path, default=Path.cwd(),
                        help="directory checked for parmonc_genparam.dat")
    parser.add_argument("--alpha", type=float, default=0.01,
                        help="per-test significance level")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns 0 when certification passes."""
    args = build_parser().parse_args(argv)
    try:
        passed, report = certify(draws=args.draws,
                                 substreams=args.substreams,
                                 workdir=args.workdir, alpha=args.alpha)
    except ReproError as exc:
        print(f"parmonc-rngtest: error: {exc}", file=sys.stderr)
        return 2
    print(report)
    return 0 if passed else 1


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
