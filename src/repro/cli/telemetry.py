"""The ``parmonc-telemetry`` command: render a run's observability record.

Reads the ``parmonc_data/telemetry`` artifacts written by a run with
``telemetry=True`` — the JSONL event log and the metrics snapshot (see
``docs/observability.md``) — and prints the run totals, the per-worker
table, timing histograms, the slowest spans, and the tail of the event
log.  ``parmonc-report --telemetry`` shows the same view appended to the
result-file summary; this command is the telemetry-only equivalent.

Usage::

    $ parmonc-telemetry [--workdir DIR] [--spans N] [--events N]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.exceptions import ReproError
from repro.obs.render import render_telemetry, telemetry_directory
from repro.runtime.files import DataDirectory

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the parmonc-telemetry argument parser."""
    parser = argparse.ArgumentParser(
        prog="parmonc-telemetry",
        description="Render the telemetry record of a PARMONC run.")
    parser.add_argument("--workdir", type=Path, default=Path.cwd(),
                        help="directory containing parmonc_data")
    parser.add_argument("--spans", type=int, default=8,
                        help="slowest spans to list")
    parser.add_argument("--events", type=int, default=8,
                        help="trailing events to list")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    data = DataDirectory(args.workdir)
    try:
        if not data.root.exists():
            raise ReproError(
                f"no parmonc_data directory under {args.workdir}")
        print(render_telemetry(telemetry_directory(data.root),
                               spans=max(0, args.spans),
                               tail=max(0, args.events)))
    except ReproError as exc:
        print(f"parmonc-telemetry: error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
