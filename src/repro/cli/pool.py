"""The ``parmonc-pool`` command: serve local workers to remote runs.

Start one pool per machine you want to contribute::

    $ parmonc-pool --port 9737 --workers 8

then point a run at it (from any host that can reach the port)::

    $ parmonc-run mymodel:one_trajectory --maxsv 100000 \\
          --backend distributed --connect nodeA:9737,nodeB:9737 \\
          --on-worker-death reassign

Pools may start before or *after* the run — a late pool joins mid-run
and receives whatever assignments are still pending.  See
``docs/protocol.md`` for the wire format and ``docs/user-guide.md`` for
a two-host walkthrough.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import sys

from repro.runtime.pool import DEFAULT_POOL_PORT, PoolServer

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the parmonc-pool argument parser."""
    parser = argparse.ArgumentParser(
        prog="parmonc-pool",
        description="Serve local worker processes to distributed "
                    "parmonc runs over TCP.")
    parser.add_argument("--bind", default="127.0.0.1",
                        help="interface to listen on (default loopback; "
                             "use 0.0.0.0 to serve other hosts — the "
                             "protocol executes the run's realization "
                             "routine, so only expose trusted networks)")
    parser.add_argument("--port", type=int, default=DEFAULT_POOL_PORT,
                        help=f"TCP port (default {DEFAULT_POOL_PORT}; "
                             f"0 picks a free one)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker-process slots to offer "
                             "(default: CPU count)")
    parser.add_argument("--start-method", default=None,
                        choices=("fork", "spawn", "forkserver"),
                        help="multiprocessing start method for worker "
                             "processes")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0,
                        help="seconds between liveness heartbeats to "
                             "connected runs")
    parser.add_argument("--session-timeout", type=float, default=60.0,
                        help="seconds of run silence before its session "
                             "is dropped and its workers reclaimed")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="log every session and worker event")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.INFO if args.verbose else logging.WARNING,
        format="%(asctime)s %(levelname)s %(message)s")
    server = PoolServer(
        host=args.bind, port=args.port, workers=args.workers,
        start_method=args.start_method,
        heartbeat_interval=args.heartbeat_interval,
        session_timeout=args.session_timeout)

    class _Announcer:
        """Print the bound address the moment the socket is up."""

        def set(self) -> None:
            try:
                host, port = server.address
            except RuntimeError:
                return  # bind failed; the OSError surfaces below
            print(f"parmonc-pool listening on {host}:{port}", flush=True)

    try:
        asyncio.run(server.serve(_Announcer()))
    except KeyboardInterrupt:
        print("parmonc-pool: interrupted, shutting down", file=sys.stderr)
    except OSError as exc:
        print(f"parmonc-pool: cannot bind {args.bind}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
