"""The ``parmonc-submit`` / ``parmonc-sched`` commands: batch runs.

``parmonc-submit`` appends one job description to a queue file (JSON
lines, one job per line)::

    $ parmonc-submit mymodel:one_trajectory --queue jobs.jsonl \\
          --maxsv 100000 --seqnum 3 --name diffusion --priority 2

``parmonc-sched`` drains the queue through one shared
:class:`~repro.runtime.scheduler.Scheduler` — every job multiplexed
over the same worker pool, fair-shared by priority::

    $ parmonc-sched --queue jobs.jsonl --backend multiprocess \\
          --workers 8 --sla-report sla.json

The queue file is a plain spool, not a daemon: ``submit`` only writes
the description (the routine travels as its ``module:function`` name),
and ``sched`` imports the routines, submits every job and blocks until
the batch drains.  The SLA report is the scheduler's
:meth:`~repro.runtime.scheduler.Scheduler.sla_report` as JSON — per-job
submit-to-start wait, makespan, deadline misses and dispatch counts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cli.run import load_routine
from repro.core.parmonc import build_job_spec
from repro.exceptions import ReproError
from repro.runtime.engine import available_backends, create_backend
from repro.runtime.job import JobStatus
from repro.runtime.scheduler import Scheduler

__all__ = ["submit_main", "sched_main"]

#: Default queue file, relative to the working directory.
DEFAULT_QUEUE = "parmonc_jobs.jsonl"


# ---------------------------------------------------------------------------
# parmonc-submit


def build_submit_parser() -> argparse.ArgumentParser:
    """Build the parmonc-submit argument parser."""
    parser = argparse.ArgumentParser(
        prog="parmonc-submit",
        description="Append one job to a parmonc batch queue file "
                    "(run the queue with parmonc-sched).")
    parser.add_argument("routine",
                        help="realization routine as module:function "
                             "(imported by parmonc-sched at run time)")
    parser.add_argument("--queue", type=Path, default=Path(DEFAULT_QUEUE),
                        help=f"queue file to append to (default: "
                             f"{DEFAULT_QUEUE})")
    parser.add_argument("--name", default=None,
                        help="job name (default: job-<position>)")
    parser.add_argument("--priority", type=float, default=1.0,
                        help="fair-share weight; a priority-2 job is "
                             "dispatched twice as often as a "
                             "priority-1 one under contention")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="cap on this job's concurrent workers")
    parser.add_argument("--deadline", type=float, default=None,
                        help="advisory SLA target in seconds; misses "
                             "are counted in the SLA report, the job "
                             "is not cancelled (use --time-limit for "
                             "hard cancellation)")
    parser.add_argument("--nrow", type=int, default=1)
    parser.add_argument("--ncol", type=int, default=1)
    parser.add_argument("--maxsv", type=int, required=True,
                        help="maximal total sample volume")
    parser.add_argument("--res", type=int, choices=(0, 1), default=0,
                        help="0 = new simulation, 1 = resume previous")
    parser.add_argument("--seqnum", type=int, default=0,
                        help="experiments subsequence number; give "
                             "every queued job its own")
    parser.add_argument("--perpass", type=float, default=1.0,
                        help="seconds between worker data passes")
    parser.add_argument("--peraver", type=float, default=5.0,
                        help="seconds between collector saves")
    parser.add_argument("--processors", "-M", type=int, default=1)
    parser.add_argument("--workdir", type=Path, default=None,
                        help="job result directory (default: a "
                             "directory named after the job, next to "
                             "the queue file)")
    parser.add_argument("--time-limit", type=float, default=None,
                        help="hard per-job time limit in seconds")
    parser.add_argument("--telemetry", action="store_true",
                        help="record telemetry artifacts for this job")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="batched realization engine block size")
    parser.add_argument("--statistics", default=None,
                        help="comma-separated extra statistics")
    parser.add_argument("--on-worker-death",
                        choices=("fail", "reassign"), default="fail")
    parser.add_argument("--death-grace", type=float, default=1.0)
    return parser


def submit_main(argv: list[str] | None = None) -> int:
    """Entry point of ``parmonc-submit``; returns a process exit code."""
    args = build_submit_parser().parse_args(argv)
    position = 0
    if args.queue.exists():
        position = sum(1 for line in
                       args.queue.read_text().splitlines() if line.strip())
    name = args.name or f"job-{position}"
    entry = {
        "routine": args.routine,
        "name": name,
        "priority": args.priority,
        "nrow": args.nrow, "ncol": args.ncol, "maxsv": args.maxsv,
        "res": args.res, "seqnum": args.seqnum,
        "perpass": args.perpass, "peraver": args.peraver,
        "processors": args.processors,
        "on_worker_death": args.on_worker_death,
        "death_grace": args.death_grace,
        "telemetry": args.telemetry,
    }
    if args.max_workers is not None:
        entry["max_workers"] = args.max_workers
    if args.deadline is not None:
        entry["deadline"] = args.deadline
    if args.time_limit is not None:
        entry["time_limit"] = args.time_limit
    if args.batch_size is not None:
        entry["batch_size"] = args.batch_size
    if args.statistics is not None:
        entry["statistics"] = args.statistics
    if args.workdir is not None:
        entry["workdir"] = str(args.workdir)
    args.queue.parent.mkdir(parents=True, exist_ok=True)
    with args.queue.open("a") as stream:
        stream.write(json.dumps(entry) + "\n")
    print(f"queued {name} (#{position}) in {args.queue}")
    return 0


# ---------------------------------------------------------------------------
# parmonc-sched


def build_sched_parser() -> argparse.ArgumentParser:
    """Build the parmonc-sched argument parser."""
    parser = argparse.ArgumentParser(
        prog="parmonc-sched",
        description="Run every job of a parmonc batch queue over one "
                    "shared worker pool.")
    parser.add_argument("--queue", type=Path, default=Path(DEFAULT_QUEUE),
                        help=f"queue file written by parmonc-submit "
                             f"(default: {DEFAULT_QUEUE})")
    parser.add_argument("--backend", choices=available_backends(),
                        default="multiprocess",
                        help="shared backend all jobs run on "
                             "(must support concurrent jobs: "
                             "sequential, multiprocess or distributed)")
    parser.add_argument("--workers", type=int, default=None,
                        help="global cap on concurrently running "
                             "workers across all jobs "
                             "(default: unbounded)")
    parser.add_argument("--max-jobs", type=int, default=None,
                        help="admission bound; queue entries beyond it "
                             "are rejected and reported")
    parser.add_argument("--connect", default=None,
                        help="distributed backend: comma-separated "
                             "parmonc-pool addresses")
    parser.add_argument("--start-method", default=None,
                        help="multiprocess backend: multiprocessing "
                             "start method override")
    parser.add_argument("--sla-report", type=Path, default=None,
                        help="write the scheduler's SLA report (per-job "
                             "waits, makespans, deadline misses) to "
                             "this JSON file")
    return parser


def _load_queue(path: Path) -> list[dict]:
    if not path.exists():
        raise FileNotFoundError(
            f"queue file {path} does not exist; create it with "
            f"parmonc-submit")
    entries = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{number}: malformed job entry: {exc}") from exc
        if not isinstance(entry, dict):
            raise ValueError(
                f"{path}:{number}: job entry must be an object")
        entries.append(entry)
    return entries


def sched_main(argv: list[str] | None = None) -> int:
    """Entry point of ``parmonc-sched``; returns a process exit code."""
    args = build_sched_parser().parse_args(argv)
    try:
        entries = _load_queue(args.queue)
    except (FileNotFoundError, ValueError) as exc:
        print(f"parmonc-sched: error: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(f"parmonc-sched: {args.queue} holds no jobs",
              file=sys.stderr)
        return 2
    # Routines travel by name; import relative to the queue directory,
    # the way parmonc-run resolves specs next to the model file.
    sys.path.insert(0, str(args.queue.parent.resolve()))
    rejected: list[str] = []
    try:
        scheduler = Scheduler(
            create_backend(args.backend, start_method=args.start_method,
                           connect=args.connect),
            workers=args.workers, max_jobs=args.max_jobs)
        submitted = []
        for index, entry in enumerate(entries):
            entry = dict(entry)
            spec = entry.pop("routine", None)
            if not isinstance(spec, str):
                print(f"parmonc-sched: error: job #{index} misses its "
                      f"module:function routine", file=sys.stderr)
                return 2
            entry["routine"] = load_routine(spec)
            entry.setdefault(
                "workdir",
                str(args.queue.parent / entry.get("name", f"job-{index}")))
            try:
                submitted.append(
                    scheduler.submit(build_job_spec(entry, index)))
            except ReproError as exc:
                rejected.append(entry.get("name", f"job-{index}"))
                print(f"parmonc-sched: rejected "
                      f"{entry.get('name', f'job-{index}')}: {exc}",
                      file=sys.stderr)
        if not submitted:
            print("parmonc-sched: error: every job was rejected",
                  file=sys.stderr)
            return 2
        scheduler.run()
    except ReproError as exc:
        print(f"parmonc-sched: error: {exc}", file=sys.stderr)
        return 2
    failed = 0
    for job in submitted:
        if job.error is not None:
            failed += 1
            print(f"{job.id}: FAILED — {job.error}")
            continue
        result = job.result
        sla = result.sla or {}
        print(f"{job.id}: L={result.total_volume} "
              f"wait={sla.get('wait_seconds', 0.0):.3f}s "
              f"makespan={sla.get('makespan_seconds', 0.0):.3f}s"
              + (" DEADLINE MISSED" if sla.get("deadline_missed")
                 else ""))
        if result.data_dir is not None:
            print(f"  results under {result.data_dir}")
    report = scheduler.sla_report()
    report["rejected_jobs"] = rejected
    print(f"batch: {len(submitted)} jobs, {failed} failed, "
          f"{len(rejected)} rejected, "
          f"{report['deadline_misses']} deadline misses")
    if args.sla_report is not None:
        args.sla_report.parent.mkdir(parents=True, exist_ok=True)
        args.sla_report.write_text(json.dumps(report, indent=2) + "\n")
        print(f"SLA report written to {args.sla_report}")
    incomplete = sum(1 for job in submitted
                     if job.error is None and job.status
                     is not JobStatus.DONE)
    return 1 if (failed or incomplete) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via scripts
    sys.exit(sched_main())
