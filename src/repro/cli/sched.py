"""The ``parmonc-submit`` / ``parmonc-sched`` commands: batch runs.

``parmonc-submit`` appends one job description to a queue file (JSON
lines, one job per line)::

    $ parmonc-submit mymodel:one_trajectory --queue jobs.jsonl \\
          --maxsv 100000 --seqnum 3 --name diffusion --priority 2

``parmonc-sched`` drains the queue through one shared
:class:`~repro.runtime.scheduler.Scheduler` — every job multiplexed
over the same worker pool, fair-shared by priority::

    $ parmonc-sched --queue jobs.jsonl --backend multiprocess \\
          --workers 8 --sla-report sla.json

The queue file is a plain spool, not a daemon: ``submit`` only writes
the description (the routine travels as its ``module:function`` name),
and ``sched`` imports the routines, submits every job and blocks until
the batch drains.  The SLA report is the scheduler's
:meth:`~repro.runtime.scheduler.Scheduler.sla_report` as JSON — per-job
submit-to-start wait, makespan, deadline misses and dispatch counts.

**Streaming service.**  ``parmonc-sched --serve`` turns the spool into
a live queue: the command keeps the scheduler's admission loop running,
tails the queue file, and admits every appended entry mid-run.  The
service mirrors job states into ``<queue>.status.json`` (written
atomically), which is what ``parmonc-submit --wait`` polls::

    $ parmonc-sched --serve --queue jobs.jsonl --workers 8 &
    $ parmonc-submit mymodel:one_trajectory --queue jobs.jsonl \\
          --maxsv 100000 --name diffusion --wait   # blocks until done
    $ parmonc-submit --cancel diffusion --queue jobs.jsonl

Besides job entries the queue accepts two directives:
``{"cancel": "<job>"}`` withdraws a queued or running job, and
``{"shutdown": true}`` drains the admitted jobs and stops the service
(SIGTERM does the same).  Every entry is validated *before* it is
appended — a bad field fails ``parmonc-submit`` with exit code 2 and
never reaches the queue.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path

from repro.cli.run import load_routine
from repro.core.parmonc import build_job_spec
from repro.exceptions import ConfigurationError, ReproError
from repro.runtime.engine import available_backends, create_backend
from repro.runtime.job import JobStatus
from repro.runtime.scheduler import Scheduler

__all__ = ["submit_main", "sched_main", "status_path", "validate_entry"]

#: Default queue file, relative to the working directory.
DEFAULT_QUEUE = "parmonc_jobs.jsonl"

#: Seconds between ``--wait`` polls of the service status file.
_WAIT_POLL_SECONDS = 0.2


def status_path(queue: Path) -> Path:
    """The live service's status file for a queue."""
    return queue.with_name(queue.name + ".status.json")


def _placeholder_routine(rng):  # pragma: no cover - never executed
    """Stand-in callable for validating entries at submit time."""
    return 0.0


def validate_entry(entry: dict, position: int = 0) -> None:
    """Check that a queue entry builds a valid :class:`JobSpec`.

    The routine travels as its ``module:function`` name and is only
    imported by the scheduler, so validation substitutes a placeholder
    callable and lets :func:`~repro.core.parmonc.build_job_spec` (and
    the :class:`~repro.runtime.config.RunConfig` it constructs) check
    every other field.

    Raises:
        ConfigurationError: Naming the offending field, exactly as the
            scheduler would have at admission time.
    """
    probe = dict(entry)
    probe["routine"] = _placeholder_routine
    build_job_spec(probe, position)


# ---------------------------------------------------------------------------
# parmonc-submit


def build_submit_parser() -> argparse.ArgumentParser:
    """Build the parmonc-submit argument parser."""
    parser = argparse.ArgumentParser(
        prog="parmonc-submit",
        description="Append one job to a parmonc batch queue file "
                    "(run the queue with parmonc-sched).")
    parser.add_argument("routine", nargs="?", default=None,
                        help="realization routine as module:function "
                             "(imported by parmonc-sched at run time)")
    parser.add_argument("--queue", type=Path, default=Path(DEFAULT_QUEUE),
                        help=f"queue file to append to (default: "
                             f"{DEFAULT_QUEUE})")
    parser.add_argument("--name", default=None,
                        help="job name (default: job-<position>)")
    parser.add_argument("--priority", type=float, default=1.0,
                        help="fair-share weight; a priority-2 job is "
                             "dispatched twice as often as a "
                             "priority-1 one under contention")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="cap on this job's concurrent workers")
    parser.add_argument("--deadline", type=float, default=None,
                        help="advisory SLA target in seconds; misses "
                             "are counted in the SLA report, the job "
                             "is not cancelled (use --time-limit for "
                             "hard cancellation)")
    parser.add_argument("--nrow", type=int, default=1)
    parser.add_argument("--ncol", type=int, default=1)
    parser.add_argument("--maxsv", type=int, default=None,
                        help="maximal total sample volume")
    parser.add_argument("--res", type=int, choices=(0, 1), default=0,
                        help="0 = new simulation, 1 = resume previous")
    parser.add_argument("--seqnum", type=int, default=0,
                        help="experiments subsequence number; give "
                             "every queued job its own")
    parser.add_argument("--perpass", type=float, default=1.0,
                        help="seconds between worker data passes")
    parser.add_argument("--peraver", type=float, default=5.0,
                        help="seconds between collector saves")
    parser.add_argument("--processors", "-M", type=int, default=1)
    parser.add_argument("--workdir", type=Path, default=None,
                        help="job result directory (default: a "
                             "directory named after the job, next to "
                             "the queue file)")
    parser.add_argument("--time-limit", type=float, default=None,
                        help="hard per-job time limit in seconds")
    parser.add_argument("--telemetry", action="store_true",
                        help="record telemetry artifacts for this job")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="batched realization engine block size")
    parser.add_argument("--statistics", default=None,
                        help="comma-separated extra statistics")
    parser.add_argument("--on-worker-death",
                        choices=("fail", "reassign"), default="fail")
    parser.add_argument("--death-grace", type=float, default=1.0)
    parser.add_argument("--cancel", metavar="JOB", default=None,
                        help="append a cancel directive for the named "
                             "job instead of submitting one (needs a "
                             "parmonc-sched --serve watching the queue)")
    parser.add_argument("--shutdown", action="store_true",
                        help="append a shutdown directive: the serving "
                             "parmonc-sched drains its jobs and exits")
    parser.add_argument("--wait", action="store_true",
                        help="block until the job finishes, polling "
                             "the --serve status file; exit 0 when "
                             "done, 1 when failed/cancelled/rejected")
    parser.add_argument("--wait-timeout", type=float, default=None,
                        help="give up --wait after this many seconds "
                             "(exit 1)")
    return parser


def _append_line(queue: Path, entry: dict) -> None:
    queue.parent.mkdir(parents=True, exist_ok=True)
    with queue.open("a") as stream:
        stream.write(json.dumps(entry) + "\n")


def _wait_for(queue: Path, name: str, timeout: float | None) -> int:
    """Poll the service status file until ``name`` finishes."""
    path = status_path(queue)
    deadline = (time.monotonic() + timeout
                if timeout is not None else None)
    while True:
        try:
            snapshot = json.loads(path.read_text())
        except (OSError, ValueError):
            snapshot = {}
        record = (snapshot.get("jobs") or {}).get(name)
        if record is not None:
            state = record.get("status")
            if state == JobStatus.DONE:
                print(f"{name}: done")
                return 0
            if state in (JobStatus.FAILED, JobStatus.CANCELLED,
                         "rejected"):
                error = record.get("error")
                print(f"{name}: {state}"
                      + (f" — {error}" if error else ""),
                      file=sys.stderr)
                return 1
        if deadline is not None and time.monotonic() >= deadline:
            print(f"parmonc-submit: timed out waiting for {name} "
                  f"(is parmonc-sched --serve running?)",
                  file=sys.stderr)
            return 1
        time.sleep(_WAIT_POLL_SECONDS)


def submit_main(argv: list[str] | None = None) -> int:
    """Entry point of ``parmonc-submit``; returns a process exit code."""
    parser = build_submit_parser()
    args = parser.parse_args(argv)
    if args.cancel is not None:
        _append_line(args.queue, {"cancel": args.cancel})
        print(f"cancel {args.cancel} queued in {args.queue}")
        if args.wait:
            return _wait_for(args.queue, args.cancel, args.wait_timeout)
        return 0
    if args.shutdown:
        _append_line(args.queue, {"shutdown": True})
        print(f"shutdown queued in {args.queue}")
        return 0
    if args.routine is None or args.maxsv is None:
        parser.error("a routine and --maxsv are required "
                     "(unless --cancel/--shutdown)")
    position = 0
    if args.queue.exists():
        position = sum(1 for line in
                       args.queue.read_text().splitlines() if line.strip())
    name = args.name or f"job-{position}"
    entry = {
        "routine": args.routine,
        "name": name,
        "priority": args.priority,
        "nrow": args.nrow, "ncol": args.ncol, "maxsv": args.maxsv,
        "res": args.res, "seqnum": args.seqnum,
        "perpass": args.perpass, "peraver": args.peraver,
        "processors": args.processors,
        "on_worker_death": args.on_worker_death,
        "death_grace": args.death_grace,
        "telemetry": args.telemetry,
    }
    if args.max_workers is not None:
        entry["max_workers"] = args.max_workers
    if args.deadline is not None:
        entry["deadline"] = args.deadline
    if args.time_limit is not None:
        entry["time_limit"] = args.time_limit
    if args.batch_size is not None:
        entry["batch_size"] = args.batch_size
    if args.statistics is not None:
        entry["statistics"] = args.statistics
    if args.workdir is not None:
        entry["workdir"] = str(args.workdir)
    try:
        # Catch bad fields here, with a field-level message, instead
        # of poisoning the queue for the scheduler to trip over.
        validate_entry(entry, position)
    except ConfigurationError as exc:
        print(f"parmonc-submit: error: {exc}", file=sys.stderr)
        return 2
    _append_line(args.queue, entry)
    print(f"queued {name} (#{position}) in {args.queue}")
    if args.wait:
        return _wait_for(args.queue, name, args.wait_timeout)
    return 0


# ---------------------------------------------------------------------------
# parmonc-sched


def build_sched_parser() -> argparse.ArgumentParser:
    """Build the parmonc-sched argument parser."""
    parser = argparse.ArgumentParser(
        prog="parmonc-sched",
        description="Run every job of a parmonc batch queue over one "
                    "shared worker pool.")
    parser.add_argument("--queue", type=Path, default=Path(DEFAULT_QUEUE),
                        help=f"queue file written by parmonc-submit "
                             f"(default: {DEFAULT_QUEUE})")
    parser.add_argument("--serve", action="store_true",
                        help="run as a live service: keep the admission "
                             "loop running, tail the queue file and "
                             "admit appended jobs mid-run; stop via a "
                             "shutdown directive or SIGTERM")
    parser.add_argument("--backend", choices=available_backends(),
                        default="multiprocess",
                        help="shared backend all jobs run on "
                             "(must support concurrent jobs: "
                             "sequential, multiprocess or distributed)")
    parser.add_argument("--workers", type=int, default=None,
                        help="global cap on concurrently running "
                             "workers across all jobs "
                             "(default: unbounded)")
    parser.add_argument("--max-jobs", type=int, default=None,
                        help="admission bound; queue entries beyond it "
                             "are rejected and reported")
    parser.add_argument("--connect", default=None,
                        help="distributed backend: comma-separated "
                             "parmonc-pool addresses")
    parser.add_argument("--start-method", default=None,
                        help="multiprocess backend: multiprocessing "
                             "start method override")
    parser.add_argument("--sla-report", type=Path, default=None,
                        help="write the scheduler's SLA report (per-job "
                             "waits, makespans, deadline misses) to "
                             "this JSON file")
    return parser


def _load_queue(path: Path) -> list[dict]:
    if not path.exists():
        raise FileNotFoundError(
            f"queue file {path} does not exist; create it with "
            f"parmonc-submit")
    entries = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{number}: malformed job entry: {exc}") from exc
        if not isinstance(entry, dict):
            raise ValueError(
                f"{path}:{number}: job entry must be an object")
        entries.append(entry)
    return entries


def _write_status(path: Path, payload: dict,
                  last: str | None) -> str | None:
    """Atomically mirror the service state; skip unchanged rewrites."""
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if text == last:
        return last
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except OSError as exc:  # pragma: no cover - disk trouble
        print(f"parmonc-sched: cannot write {path}: {exc}",
              file=sys.stderr)
        return last
    return text


def _serve_queue(args) -> int:
    """The ``--serve`` path: a live scheduler tailing the queue file."""
    queue: Path = args.queue
    queue.parent.mkdir(parents=True, exist_ok=True)
    queue.touch(exist_ok=True)
    sys.path.insert(0, str(queue.parent.resolve()))
    status_file = status_path(queue)
    scheduler = Scheduler(
        create_backend(args.backend, start_method=args.start_method,
                       connect=args.connect),
        workers=args.workers, max_jobs=args.max_jobs)
    records: dict[str, dict] = {}
    jobs: dict[str, object] = {}
    state = {"offset": 0, "count": 0, "stop": False, "written": None}

    def admit(entry: dict, position: int) -> None:
        name = str(entry.get("name") or f"job-{position}")
        spec = entry.pop("routine", None)
        if not isinstance(spec, str):
            records[name] = {"status": "rejected", "error":
                             "entry misses its module:function routine"}
            print(f"parmonc-sched: rejected {name}: no routine",
                  file=sys.stderr)
            return
        try:
            entry["routine"] = load_routine(spec)
            entry.setdefault("name", name)
            entry.setdefault("workdir", str(queue.parent / name))
            job = scheduler.submit(build_job_spec(entry, position))
        except ReproError as exc:
            records[name] = {"status": "rejected", "error": str(exc)}
            print(f"parmonc-sched: rejected {name}: {exc}",
                  file=sys.stderr)
            return
        jobs[job.id] = job
        print(f"parmonc-sched: admitted {job.id}", flush=True)

    def process(line: str) -> None:
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            print(f"parmonc-sched: skipping malformed entry: {exc}",
                  file=sys.stderr)
            return
        if not isinstance(entry, dict):
            print("parmonc-sched: skipping non-object entry",
                  file=sys.stderr)
            return
        if entry.get("shutdown"):
            state["stop"] = True
            return
        target = entry.get("cancel")
        if target is not None:
            try:
                accepted = scheduler.cancel(str(target))
            except ConfigurationError as exc:
                print(f"parmonc-sched: cancel: {exc}", file=sys.stderr)
                return
            print(f"parmonc-sched: cancel {target}: "
                  f"{'accepted' if accepted else 'already finished'}",
                  flush=True)
            return
        position = state["count"]
        state["count"] += 1
        admit(entry, position)

    def snapshot(serving: bool = True) -> dict:
        for job in jobs.values():
            record = records.setdefault(job.id, {})
            status = job.status
            if record.get("status") != status:
                record["status"] = status
                record["error"] = (str(job.error)
                                   if job.error is not None else None)
                if status in JobStatus.FINISHED:
                    print(f"parmonc-sched: {job.id}: {status}"
                          + (f" — {job.error}" if job.error else ""),
                          flush=True)
        return {"queue": str(queue), "serving": serving,
                "jobs": records}

    def watcher() -> bool:
        try:
            text = queue.read_text()
        except OSError:
            text = ""
        chunk = text[state["offset"]:]
        cut = chunk.rfind("\n")
        if cut >= 0:
            # Consume only complete lines; a submit racing this read
            # keeps its partial line for the next tick.
            state["offset"] += cut + 1
            for line in chunk[:cut].splitlines():
                if line.strip():
                    process(line.strip())
        state["written"] = _write_status(status_file, snapshot(),
                                         state["written"])
        return not state["stop"]

    def request_stop(signum, frame):
        state["stop"] = True

    on_main = threading.current_thread() is threading.main_thread()
    previous = {}
    if on_main:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, request_stop)
    print(f"parmonc-sched: serving {queue} on the {args.backend} "
          f"backend (status file: {status_file})", flush=True)
    try:
        scheduler.serve(on_idle=watcher)
    except ReproError as exc:
        print(f"parmonc-sched: error: {exc}", file=sys.stderr)
        return 2
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        state["written"] = _write_status(status_file, snapshot(False),
                                         state["written"])
    report = scheduler.sla_report()
    failed = sum(1 for job in jobs.values() if job.error is not None)
    cancelled = sum(1 for job in jobs.values()
                    if job.status is JobStatus.CANCELLED)
    print(f"service: {len(jobs)} jobs admitted, {failed} failed, "
          f"{cancelled} cancelled, {report['deadline_misses']} "
          f"deadline misses")
    if args.sla_report is not None:
        args.sla_report.parent.mkdir(parents=True, exist_ok=True)
        args.sla_report.write_text(json.dumps(report, indent=2) + "\n")
        print(f"SLA report written to {args.sla_report}")
    return 1 if failed else 0


def sched_main(argv: list[str] | None = None) -> int:
    """Entry point of ``parmonc-sched``; returns a process exit code."""
    args = build_sched_parser().parse_args(argv)
    if args.serve:
        return _serve_queue(args)
    try:
        entries = _load_queue(args.queue)
    except (FileNotFoundError, ValueError) as exc:
        print(f"parmonc-sched: error: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(f"parmonc-sched: {args.queue} holds no jobs",
              file=sys.stderr)
        return 2
    # Routines travel by name; import relative to the queue directory,
    # the way parmonc-run resolves specs next to the model file.
    sys.path.insert(0, str(args.queue.parent.resolve()))
    rejected: list[str] = []
    try:
        scheduler = Scheduler(
            create_backend(args.backend, start_method=args.start_method,
                           connect=args.connect),
            workers=args.workers, max_jobs=args.max_jobs)
        submitted = []
        for index, entry in enumerate(entries):
            entry = dict(entry)
            spec = entry.pop("routine", None)
            if not isinstance(spec, str):
                print(f"parmonc-sched: error: job #{index} misses its "
                      f"module:function routine", file=sys.stderr)
                return 2
            entry["routine"] = load_routine(spec)
            entry.setdefault(
                "workdir",
                str(args.queue.parent / entry.get("name", f"job-{index}")))
            try:
                submitted.append(
                    scheduler.submit(build_job_spec(entry, index)))
            except ReproError as exc:
                rejected.append(entry.get("name", f"job-{index}"))
                print(f"parmonc-sched: rejected "
                      f"{entry.get('name', f'job-{index}')}: {exc}",
                      file=sys.stderr)
        if not submitted:
            print("parmonc-sched: error: every job was rejected",
                  file=sys.stderr)
            return 2
        scheduler.run()
    except ReproError as exc:
        print(f"parmonc-sched: error: {exc}", file=sys.stderr)
        return 2
    failed = 0
    for job in submitted:
        if job.error is not None:
            failed += 1
            print(f"{job.id}: FAILED — {job.error}")
            continue
        result = job.result
        sla = result.sla or {}
        print(f"{job.id}: L={result.total_volume} "
              f"wait={sla.get('wait_seconds', 0.0):.3f}s "
              f"makespan={sla.get('makespan_seconds', 0.0):.3f}s"
              + (" DEADLINE MISSED" if sla.get("deadline_missed")
                 else ""))
        if result.data_dir is not None:
            print(f"  results under {result.data_dir}")
    report = scheduler.sla_report()
    report["rejected_jobs"] = rejected
    print(f"batch: {len(submitted)} jobs, {failed} failed, "
          f"{len(rejected)} rejected, "
          f"{report['deadline_misses']} deadline misses")
    if args.sla_report is not None:
        args.sla_report.parent.mkdir(parents=True, exist_ok=True)
        args.sla_report.write_text(json.dumps(report, indent=2) + "\n")
        print(f"SLA report written to {args.sla_report}")
    incomplete = sum(1 for job in submitted
                     if job.error is None and job.status
                     is not JobStatus.DONE)
    return 1 if (failed or incomplete) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via scripts
    sys.exit(sched_main())
