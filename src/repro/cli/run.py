"""The ``parmonc-run`` command: launch a simulation from the shell.

The user supplies the realization routine as ``module:function`` (any
importable module, including a plain ``.py`` file on the path), plus the
``parmoncc`` arguments::

    $ parmonc-run mymodel:one_trajectory --nrow 1000 --ncol 2 \\
          --maxsv 100000 --processors 8 --backend multiprocess

This plays the role of the paper's tiny C ``main()`` that does nothing
but call ``parmoncc``.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path

from repro.core.parmonc import parmonc
from repro.exceptions import ConfigurationError, ReproError
from repro.runtime.engine import available_backends

__all__ = ["main", "load_routine"]


def load_routine(spec: str):
    """Resolve a ``module:function`` specification to a callable."""
    module_name, separator, attribute = spec.partition(":")
    if not separator or not module_name or not attribute:
        raise ConfigurationError(
            f"routine spec must look like 'module:function', got {spec!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(
            f"cannot import module {module_name!r}: {exc}") from exc
    try:
        routine = getattr(module, attribute)
    except AttributeError as exc:
        raise ConfigurationError(
            f"module {module_name!r} has no attribute "
            f"{attribute!r}") from exc
    if not callable(routine):
        raise ConfigurationError(
            f"{spec!r} resolved to a non-callable "
            f"{type(routine).__name__}")
    return routine


def build_parser() -> argparse.ArgumentParser:
    """Build the parmonc-run argument parser."""
    parser = argparse.ArgumentParser(
        prog="parmonc-run",
        description="Run a parallel stochastic simulation for a "
                    "user-supplied realization routine.")
    parser.add_argument("routine", nargs="?", default=None,
                        help="realization routine as module:function")
    parser.add_argument("--list-backends", action="store_true",
                        help="list every registered backend (including "
                             "lazily-registered ones) and exit")
    parser.add_argument("--nrow", type=int, default=1)
    parser.add_argument("--ncol", type=int, default=1)
    parser.add_argument("--maxsv", type=int, default=None,
                        help="maximal total sample volume (required "
                             "unless --list-backends)")
    parser.add_argument("--res", type=int, choices=(0, 1), default=0,
                        help="0 = new simulation, 1 = resume previous")
    parser.add_argument("--seqnum", type=int, default=0,
                        help="experiments subsequence number")
    parser.add_argument("--perpass", type=float, default=1.0,
                        help="seconds between worker data passes")
    parser.add_argument("--peraver", type=float, default=5.0,
                        help="seconds between collector saves")
    parser.add_argument("--processors", "-M", type=int, default=1)
    parser.add_argument("--backend", choices=available_backends(),
                        default="sequential")
    parser.add_argument("--connect", default=None,
                        help="distributed backend: comma-separated "
                             "parmonc-pool addresses (host:port[,...]); "
                             "unreachable pools are retried and may "
                             "join mid-run")
    parser.add_argument("--workdir", type=Path, default=Path.cwd())
    parser.add_argument("--time-limit", type=float, default=None,
                        help="job time limit in seconds")
    parser.add_argument("--telemetry", action="store_true",
                        help="record telemetry artifacts under "
                             "parmonc_data/telemetry (view with "
                             "parmonc-telemetry)")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="run the batched realization engine with "
                             "blocks of this many realizations (scalar "
                             "routines are wrapped automatically; "
                             "estimates are bit-identical)")
    parser.add_argument("--on-worker-death", choices=("fail", "reassign"),
                        default="fail",
                        help="policy when a worker dies short of its "
                             "final message: fail aborts the run "
                             "(default), reassign reissues the remaining "
                             "quota to a fresh worker")
    parser.add_argument("--death-grace", type=float, default=1.0,
                        help="seconds a cleanly-exited worker may stay "
                             "silent before being declared dead")
    parser.add_argument("--statistics", default=None,
                        help="comma-separated extra statistics to "
                             "accumulate alongside the moments "
                             "(e.g. 'covariance,histogram,extrema'; "
                             "'moments' is always included)")
    parser.add_argument("--reduction-fanout", type=int, default=None,
                        help="width of the hierarchical reduction tree: "
                             "interior reducer nodes coalesce their "
                             "subtree's snapshots so the collector "
                             "serves O(fanout) peers instead of O(M) "
                             "workers (estimates stay bit-identical; "
                             "default: flat worker-to-collector "
                             "exchange)")
    parser.add_argument("--transport", choices=("queue", "shm"),
                        default="queue",
                        help="multiprocess message transport: 'queue' "
                             "(pickle over mp.Queue) or 'shm' "
                             "(zero-copy shared-memory ring buffers "
                             "with queue fallback for oversized "
                             "payloads)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_backends:
        for name in available_backends():
            print(name)
        return 0
    if args.routine is None:
        parser.error("the routine argument is required "
                     "(unless --list-backends)")
    if args.maxsv is None:
        parser.error("--maxsv is required (unless --list-backends)")
    # Allow module:function specs relative to the working directory, the
    # way a user naturally runs `parmonc-run mymodel:f` next to mymodel.py.
    sys.path.insert(0, str(args.workdir))
    try:
        routine = load_routine(args.routine)
        result = parmonc(
            routine, nrow=args.nrow, ncol=args.ncol, maxsv=args.maxsv,
            res=args.res, seqnum=args.seqnum, perpass=args.perpass,
            peraver=args.peraver, processors=args.processors,
            backend=args.backend, workdir=args.workdir,
            time_limit=args.time_limit, telemetry=args.telemetry,
            batch_size=args.batch_size,
            on_worker_death=args.on_worker_death,
            death_grace=args.death_grace,
            statistics=args.statistics,
            reduction_fanout=args.reduction_fanout,
            transport=args.transport,
            connect=args.connect,
            # Pools import the routine by name instead of unpickling it.
            backend_options={"routine_spec": args.routine})
    except ReproError as exc:
        print(f"parmonc-run: error: {exc}", file=sys.stderr)
        return 2
    estimates = result.estimates
    print(result)
    print(f"total sample volume: {result.total_volume}")
    if estimates is not None:
        print(f"abs error upper bound: {estimates.abs_error_max:.6e}")
        print(f"rel error upper bound: {estimates.rel_error_max:.4f}%")
    for kind in sorted(result.statistics):
        print(f"statistic {kind}: "
              f"{result.statistics[kind].describe()}")
    if result.data_dir is not None:
        print(f"results under: {result.data_dir}")
    if result.telemetry is not None and result.telemetry["directory"]:
        print(f"telemetry under: {result.telemetry['directory']}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
