"""Command-line utilities: ``genparam``, ``manaver``, ``parmonc-run``."""

from __future__ import annotations

from repro.cli.genparam import main as genparam_main
from repro.cli.manaver import main as manaver_main, manual_average
from repro.cli.report import main as report_main, render_report
from repro.cli.rngtest import certify, main as rngtest_main
from repro.cli.run import main as run_main
from repro.cli.telemetry import main as telemetry_main

__all__ = ["genparam_main", "manaver_main", "manual_average", "run_main",
           "report_main", "render_report", "rngtest_main", "certify",
           "telemetry_main"]
