"""The ``genparam`` command (§3.5).

Usage::

    $ genparam ne np nr

where ``ne``, ``np`` and ``nr`` are exponents of 2 defining the leap
lengths of the experiments / processors / realizations hierarchy.  The
multipliers ``A(2**ne), A(2**np), A(2**nr)`` are computed and written to
``parmonc_genparam.dat`` in the working directory; subsequent PARMONC
runs there use them instead of the defaults.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.exceptions import ReproError
from repro.rng.multiplier import LeapSet
from repro.runtime.files import write_genparam_file

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the genparam argument parser."""
    parser = argparse.ArgumentParser(
        prog="genparam",
        description="Compute parallel-RNG leap multipliers and store them "
                    "in parmonc_genparam.dat (PARMONC section 3.5).")
    parser.add_argument("ne", type=int,
                        help="log2 of the experiments leap length")
    parser.add_argument("np", type=int,
                        help="log2 of the processors leap length")
    parser.add_argument("nr", type=int,
                        help="log2 of the realizations leap length")
    parser.add_argument("--workdir", type=Path, default=Path.cwd(),
                        help="directory for parmonc_genparam.dat "
                             "(default: current directory)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        leaps = LeapSet(experiment_exponent=args.ne,
                        processor_exponent=args.np,
                        realization_exponent=args.nr)
        multipliers = leaps.multipliers()
        path = write_genparam_file(args.workdir, args.ne, args.np, args.nr,
                                   multipliers)
    except ReproError as exc:
        print(f"genparam: error: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {path}")
    print(f"hierarchy capacities: {leaps.experiment_capacity} experiments"
          f" x {leaps.processor_capacity} processors"
          f" x {leaps.realization_capacity} realizations")
    for label, value in zip(("A(2^ne)", "A(2^np)", "A(2^nr)"), multipliers):
        print(f"{label} = {value}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
