"""Run-level telemetry: per-worker stats rolled up to rank 0.

Two halves mirror the runtime's master-worker split:

* :class:`WorkerTelemetry` lives inside one worker (possibly another OS
  process).  It keeps a handful of plain counters — realizations,
  messages, bytes, compute vs idle time — and serializes to a small
  dict that piggybacks on each :class:`~repro.runtime.messages
  .MomentMessage`, exactly like the cumulative moment snapshots do.

* :class:`RunTelemetry` lives on rank 0.  It owns the
  :class:`~repro.obs.metrics.MetricsRegistry`, the
  :class:`~repro.obs.tracing.Tracer` and the
  :class:`~repro.obs.events.EventLog` for the session, ingests the
  piggybacked worker dicts (latest-wins, like the collector's moment
  snapshots), and at session end writes ``telemetry/events.jsonl`` and
  ``telemetry/metrics.json`` under ``parmonc_data``.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Mapping

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = ["WorkerTelemetry", "RunTelemetry",
           "EVENTS_FILENAME", "METRICS_FILENAME"]

EVENTS_FILENAME = "events.jsonl"
METRICS_FILENAME = "metrics.json"

_METRICS_VERSION = 1

#: Histogram bounds for collector averaging-round durations (seconds).
_SAVE_BOUNDS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0)


class WorkerTelemetry:
    """One worker's counters; cheap to update, picklable as a dict.

    Args:
        rank: The owning worker's processor index.
        clock: Time source for the wall-seconds figure; virtual under
            simulation.
    """

    def __init__(self, rank: int,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rank = rank
        self._clock = clock
        self._started = clock()
        self.realizations = 0
        self.messages = 0
        self.bytes_sent = 0
        self.compute_seconds = 0.0
        self.send_seconds = 0.0
        self.batches = 0
        self.max_batch = 0

    def realization(self, seconds: float) -> None:
        """Account one completed realization."""
        self.realizations += 1
        self.compute_seconds += seconds

    def add_realizations(self, count: int, seconds: float) -> None:
        """Account a batch of realizations (accelerated / simulated nodes)."""
        self.realizations += count
        self.compute_seconds += seconds

    def batch(self, count: int, seconds: float) -> None:
        """Account one batched inner-loop iteration of ``count`` realizations."""
        self.batches += 1
        self.max_batch = max(self.max_batch, count)
        self.add_realizations(count, seconds)

    def message(self, nbytes: int, send_seconds: float = 0.0) -> None:
        """Account one data pass to the collector."""
        self.messages += 1
        self.bytes_sent += nbytes
        self.send_seconds += send_seconds

    def as_dict(self, now: float | None = None) -> dict:
        """Plain-data snapshot that piggybacks on a moment message.

        ``wall_seconds`` is the worker's lifetime so far; idle time is
        derived on rank 0 as ``wall - compute - send``.
        """
        wall = (now if now is not None else self._clock()) - self._started
        return {
            "rank": self.rank,
            "realizations": self.realizations,
            "messages": self.messages,
            "bytes": self.bytes_sent,
            "compute_seconds": self.compute_seconds,
            "send_seconds": self.send_seconds,
            "wall_seconds": max(wall, 0.0),
            "batches": self.batches,
            "max_batch": self.max_batch,
        }


def _worker_rollup(stats: Mapping) -> dict:
    """Derive per-worker rates from one piggybacked stats dict."""
    wall = float(stats.get("wall_seconds", 0.0))
    compute = float(stats.get("compute_seconds", 0.0))
    send = float(stats.get("send_seconds", 0.0))
    realizations = int(stats.get("realizations", 0))
    rolled = dict(stats)
    rolled["idle_seconds"] = max(wall - compute - send, 0.0)
    rolled["realizations_per_second"] = (realizations / wall
                                         if wall > 0 else 0.0)
    rolled["busy_fraction"] = (min(compute / wall, 1.0)
                               if wall > 0 else 0.0)
    return rolled


class RunTelemetry:
    """Rank-0 aggregator: registry + tracer + event log for one session.

    Args:
        clock: Time source shared by the tracer and event log; pass the
            virtual clock under simulation.
        directory: Destination for ``events.jsonl`` / ``metrics.json``
            (normally ``parmonc_data/telemetry``); None keeps the whole
            session in memory.
        epoch: Clock value of the session's start; real-time backends
            pass their start instant so every timestamp in the record
            is run-relative, virtual backends leave it at 0.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 directory: Path | str | None = None,
                 epoch: float = 0.0) -> None:
        self._clock = clock
        self._directory = Path(directory) if directory is not None else None
        events_path = (self._directory / EVENTS_FILENAME
                       if self._directory is not None else None)
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock=clock, epoch=epoch)
        self.events = EventLog(clock=clock, path=events_path, epoch=epoch)
        self._workers: dict[int, dict] = {}
        self._recoveries = 0
        self._finalized = False

    @property
    def directory(self) -> Path | None:
        """Where artifacts are written (None for in-memory telemetry)."""
        return self._directory

    @property
    def metrics_path(self) -> Path | None:
        """``telemetry/metrics.json`` (None for in-memory telemetry)."""
        if self._directory is None:
            return None
        return self._directory / METRICS_FILENAME

    # ------------------------------------------------------------------
    # Ingest

    def record_worker(self, stats: Mapping) -> None:
        """Ingest one worker's piggybacked stats dict (latest wins)."""
        rank = int(stats["rank"])
        previous = self._workers.get(rank)
        if previous is not None \
                and stats.get("realizations", 0) < previous.get(
                    "realizations", 0):
            return  # stale out-of-order stats, same rule as moments
        self._workers[rank] = dict(stats)

    def averaging_round(self, *, duration: float, volume: int,
                        eps_max: float, save_index: int,
                        now: float | None = None) -> None:
        """Account one collector averaging/saving sweep."""
        self.registry.histogram("collector.save_seconds",
                                _SAVE_BOUNDS).observe(duration)
        self.events.append("save", ts=now, volume=volume, eps_max=eps_max,
                           duration=duration, save_index=save_index)
        self.events.flush()

    def worker_recovered(self, *, rank: int, replacement: int | None,
                         reassigned: int, delivered: int,
                         now: float | None = None) -> None:
        """Account one fault-recovery: a dead rank's quota was reissued.

        Args:
            rank: The dead worker's processor index.
            replacement: The fresh worker that inherited the quota, or
                None when no replacement was needed.
            reassigned: Realizations reissued to the replacement (0 when
                the dead worker had already delivered its full quota).
            delivered: Realizations the dead worker delivered before
                dying (the collector keeps them — nothing re-runs).
            now: Run-clock timestamp of the recovery decision.
        """
        self._recoveries += 1
        self.registry.counter("engine.worker_recoveries").inc()
        if reassigned:
            self.registry.counter("engine.reassigned_realizations").inc(
                reassigned)
        self.events.append("worker_recovered", ts=now, rank=rank,
                           replacement=replacement, reassigned=reassigned,
                           delivered=delivered)
        self.events.flush()

    # ------------------------------------------------------------------
    # Roll-up

    def worker_stats(self) -> dict[int, dict]:
        """Latest per-worker stats with derived rates, keyed by rank."""
        return {rank: _worker_rollup(stats)
                for rank, stats in sorted(self._workers.items())}

    def rollup(self) -> dict:
        """Cross-worker totals (the numbers a dashboard would plot)."""
        workers = self.worker_stats()
        total_realizations = sum(w["realizations"] for w in workers.values())
        total_messages = sum(w["messages"] for w in workers.values())
        total_bytes = sum(w["bytes"] for w in workers.values())
        compute = sum(w["compute_seconds"] for w in workers.values())
        idle = sum(w["idle_seconds"] for w in workers.values())
        batches = sum(int(w.get("batches", 0)) for w in workers.values())
        return {
            "workers": len(workers),
            "realizations": total_realizations,
            "messages": total_messages,
            "bytes": total_bytes,
            "compute_seconds": compute,
            "idle_seconds": idle,
            "batches": batches,
        }

    # ------------------------------------------------------------------
    # Export

    def finalize(self, *, elapsed: float, volume: int,
                 virtual_time: float | None = None) -> dict:
        """Export spans, mirror the roll-up into metrics, write artifacts.

        Idempotent; returns the summary dict also stored on
        :attr:`~repro.runtime.result.RunResult.telemetry`.
        """
        if not self._finalized:
            self._finalized = True
            # Span timestamps are already run-relative (the tracer
            # shifted them); re-add the epoch the log will subtract.
            for span in self.tracer.spans:
                self.events.append("span",
                                   ts=span.start + self.events.epoch,
                                   **span.to_dict())
            if self.tracer.dropped:
                self.registry.counter("tracer.dropped_spans").inc(
                    self.tracer.dropped)
            rolled = self.rollup()
            for key, value in rolled.items():
                self.registry.gauge(f"run.{key}").set(value)
            self.registry.gauge("run.volume").set(volume)
            self.registry.gauge("run.elapsed_seconds").set(elapsed)
            denominator = (virtual_time if virtual_time is not None
                           else elapsed)
            self.registry.gauge("run.realizations_per_second").set(
                volume / denominator if denominator > 0 else 0.0)
            if virtual_time is not None:
                self.registry.gauge("run.virtual_seconds").set(virtual_time)
            if self._recoveries:
                self.registry.gauge("run.recovered_workers").set(
                    self._recoveries)
            for rank, stats in self.worker_stats().items():
                prefix = f"worker.{rank}"
                self.registry.gauge(f"{prefix}.realizations").set(
                    stats["realizations"])
                self.registry.gauge(f"{prefix}.messages").set(
                    stats["messages"])
                self.registry.gauge(f"{prefix}.bytes").set(stats["bytes"])
                self.registry.gauge(
                    f"{prefix}.realizations_per_second").set(
                    stats["realizations_per_second"])
                self.registry.gauge(f"{prefix}.busy_fraction").set(
                    stats["busy_fraction"])
                if stats.get("batches"):
                    self.registry.gauge(f"{prefix}.batches").set(
                        stats["batches"])
                    self.registry.gauge(f"{prefix}.max_batch").set(
                        stats.get("max_batch", 0))
            self.events.append(
                "session_end", volume=volume, elapsed=elapsed,
                **({"t_comp": virtual_time}
                   if virtual_time is not None else {}))
            self.events.flush()
            self._write_metrics()
        return self.summary()

    def _write_metrics(self) -> None:
        path = self.metrics_path
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": _METRICS_VERSION,
            "written_at": datetime.now(timezone.utc).strftime(
                "%Y-%m-%dT%H:%M:%SZ"),
            "metrics": self.registry.snapshot().to_dict(),
            "workers": {str(rank): stats
                        for rank, stats in self.worker_stats().items()},
        }
        temp = path.with_suffix(".json.tmp")
        temp.write_text(json.dumps(payload, indent=2))
        temp.replace(path)

    def summary(self) -> dict:
        """Small plain-data digest for :attr:`RunResult.telemetry`."""
        return {
            **self.rollup(),
            "events": len(self.events.events),
            "spans": len(self.tracer.spans) + self.tracer.dropped,
            "directory": (str(self._directory)
                          if self._directory is not None else None),
        }
