"""A lightweight span/trace API with an explicit, swappable clock.

Real-time backends let the tracer read ``time.monotonic`` itself; the
discrete-event backend instead *tells* the tracer when things happened
(:meth:`Tracer.record`), so a simulated 512-processor run yields a full
trace stamped in virtual seconds without ever sleeping.

Spans are flat records, not a tree — the runtime's concurrency is
processes and simulated nodes, so parentage is expressed with the
``rank`` attribute and span names (``worker.run``, ``collector.save``)
rather than span IDs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.exceptions import ConfigurationError

__all__ = ["SpanRecord", "Tracer"]

#: Spans kept in memory before the tracer starts counting drops instead.
DEFAULT_MAX_SPANS = 100_000


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    Attributes:
        name: Operation name, dotted (``worker.run``, ``message.transfer``).
        start: Start time in run seconds (virtual under simulation).
        end: End time in run seconds; never before ``start``.
        attributes: Plain-data annotations (rank, volume, bytes, ...).
    """

    name: str
    start: float
    end: float
    attributes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigurationError(
                f"span {self.name!r} ends at {self.end} before its "
                f"start {self.start}")

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """Serialize to plain JSON types (the JSONL ``span`` event body)."""
        return {"name": self.name, "start": self.start, "end": self.end,
                **self.attributes}


class Tracer:
    """Collects :class:`SpanRecord`s from one process.

    Args:
        clock: Monotonic time source used by :meth:`span`; swap in a
            virtual clock (``lambda: queue.now``) under simulation.
        max_spans: In-memory cap; once reached, further spans are counted
            in :attr:`dropped` instead of stored, so a pathological
            perpass=0 run cannot exhaust memory.
        epoch: Clock value of the run's start; subtracted from span
            timestamps so real-time backends trace in run-relative
            seconds (the virtual backend keeps epoch 0).
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 max_spans: int = DEFAULT_MAX_SPANS,
                 epoch: float = 0.0) -> None:
        if max_spans < 1:
            raise ConfigurationError(
                f"max_spans must be >= 1, got {max_spans}")
        self._clock = clock
        self._epoch = epoch
        self._max_spans = max_spans
        self._spans: list[SpanRecord] = []
        self._dropped = 0

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        """Completed spans in completion order."""
        return tuple(self._spans)

    @property
    def dropped(self) -> int:
        """Spans discarded after the in-memory cap was hit."""
        return self._dropped

    def record(self, name: str, start: float, end: float,
               **attributes) -> SpanRecord:
        """Record a span with explicit timestamps (the virtual-clock path).

        Timestamps must come from the tracer's clock; they are shifted
        onto the run-relative axis here.
        """
        span = SpanRecord(name=name, start=start - self._epoch,
                          end=end - self._epoch, attributes=attributes)
        if len(self._spans) >= self._max_spans:
            self._dropped += 1
        else:
            self._spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[dict]:
        """Time a block against the tracer's clock.

        Yields the attribute dict so the block can annotate the span
        while it runs::

            with tracer.span("collector.save") as attrs:
                attrs["volume"] = merged.volume
        """
        start = self._clock()
        try:
            yield attributes
        finally:
            self.record(name, start, self._clock(), **attributes)

    def by_name(self, name: str) -> tuple[SpanRecord, ...]:
        """All spans with the given name."""
        return tuple(s for s in self._spans if s.name == name)
