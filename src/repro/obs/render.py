"""Rendering a run's telemetry artifacts for the CLI views.

Reads ``telemetry/metrics.json`` and ``telemetry/events.jsonl`` (see
``docs/observability.md`` for the schema) and builds the text shown by
``parmonc-report --telemetry`` and the ``parmonc-telemetry`` command.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.obs.events import read_events
from repro.obs.telemetry import EVENTS_FILENAME, METRICS_FILENAME

__all__ = ["load_metrics", "render_telemetry", "telemetry_directory"]


def telemetry_directory(data_root: Path | str) -> Path:
    """The telemetry directory beneath a ``parmonc_data`` root."""
    return Path(data_root) / "telemetry"


def load_metrics(directory: Path | str) -> dict:
    """Load the ``metrics.json`` payload of a telemetry directory.

    Raises:
        ConfigurationError: If the file is absent or malformed.
    """
    path = Path(directory) / METRICS_FILENAME
    if not path.exists():
        raise ConfigurationError(f"no metrics snapshot at {path}")
    try:
        payload = json.loads(path.read_text())
        if not isinstance(payload, dict) or "metrics" not in payload:
            raise ValueError("missing 'metrics' key")
    except (json.JSONDecodeError, ValueError) as exc:
        raise ConfigurationError(
            f"corrupted metrics snapshot at {path}: {exc}") from exc
    return payload


def _format_bytes(count: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(count) < 1024.0 or unit == "GB":
            return (f"{count:.0f} {unit}" if unit == "B"
                    else f"{count:.1f} {unit}")
        count /= 1024.0
    return f"{count:.1f} GB"


def _worker_table(workers: dict) -> list[str]:
    batched = any(workers[rank].get("batches") for rank in workers)
    header = "  rank  realizations      r/s  messages      bytes  busy"
    if batched:
        header += "  batches"
    lines = ["per-worker stats:", header]
    for rank in sorted(workers, key=int):
        stats = workers[rank]
        line = (
            f"  {int(rank):>4d}  {int(stats.get('realizations', 0)):>12d}"
            f"  {stats.get('realizations_per_second', 0.0):>7.1f}"
            f"  {int(stats.get('messages', 0)):>8d}"
            f"  {_format_bytes(stats.get('bytes', 0)):>9s}"
            f"  {stats.get('busy_fraction', 0.0) * 100:>3.0f}%")
        if batched:
            line += f"  {int(stats.get('batches', 0)):>7d}"
        lines.append(line)
    return lines


def _gauge_lines(gauges: dict) -> list[str]:
    lines = ["run totals:"]
    for key in ("run.volume", "run.realizations",
                "run.realizations_per_second", "run.batches",
                "run.messages", "run.bytes", "run.elapsed_seconds",
                "run.virtual_seconds", "run.compute_seconds",
                "run.idle_seconds"):
        if key in gauges:
            value = gauges[key]
            if key == "run.bytes":
                rendered = _format_bytes(value)
            elif key.endswith("_seconds"):
                rendered = f"{value:.3f} s"
            elif key == "run.realizations_per_second":
                rendered = f"{value:.1f} r/s"
            else:
                rendered = f"{value:g}"
            lines.append(f"  {key:<22s} {rendered}")
    return lines


def _histogram_lines(histograms: dict) -> list[str]:
    lines = []
    for name in sorted(histograms):
        data = histograms[name]
        count = data.get("count", 0)
        if not count:
            continue
        mean = data.get("total", 0.0) / count
        lines.append(
            f"  {name:<26s} n={count}  mean={mean:.4g}s  "
            f"min={data.get('min', 0.0):.4g}s  "
            f"max={data.get('max', 0.0):.4g}s")
    if lines:
        lines.insert(0, "timing histograms:")
    return lines


def render_telemetry(directory: Path | str, *, spans: int = 8,
                     tail: int = 8) -> str:
    """Build the telemetry summary text for one run.

    Args:
        directory: The run's ``parmonc_data/telemetry`` directory.
        spans: How many slowest spans to list.
        tail: How many trailing non-span events to list.

    Raises:
        ConfigurationError: If the directory holds no telemetry
            artifacts at all.
    """
    directory = Path(directory)
    events_path = directory / EVENTS_FILENAME
    have_metrics = (directory / METRICS_FILENAME).exists()
    if not have_metrics and not events_path.exists():
        raise ConfigurationError(
            f"no telemetry artifacts under {directory}; run with "
            f"telemetry=True to record them")
    lines = [f"telemetry — {directory}", "-" * 60]
    if have_metrics:
        payload = load_metrics(directory)
        metrics = payload["metrics"]
        lines.extend(_gauge_lines(metrics.get("gauges", {})))
        workers = payload.get("workers", {})
        if workers:
            lines.append("")
            lines.extend(_worker_table(workers))
        histogram_lines = _histogram_lines(metrics.get("histograms", {}))
        if histogram_lines:
            lines.append("")
            lines.extend(histogram_lines)
        counters = metrics.get("counters", {})
        if counters:
            lines.append("")
            lines.append("counters:")
            for name in sorted(counters):
                lines.append(f"  {name:<26s} {counters[name]:g}")
    if events_path.exists():
        all_events = list(read_events(events_path))
        tally = TallyCounter(e.kind for e in all_events)
        lines.append("")
        lines.append(f"events ({len(all_events)} in {events_path.name}): "
                     + ", ".join(f"{kind}={count}"
                                 for kind, count in sorted(tally.items())))
        span_events = sorted(
            (e for e in all_events if e.kind == "span"),
            key=lambda e: e.fields.get("end", 0.0) - e.fields.get(
                "start", 0.0),
            reverse=True)
        if span_events and spans > 0:
            lines.append("")
            lines.append(f"slowest spans (of {len(span_events)}):")
            for event in span_events[:spans]:
                duration = (event.fields.get("end", 0.0)
                            - event.fields.get("start", 0.0))
                attrs = {k: v for k, v in event.fields.items()
                         if k not in ("name", "start", "end")}
                suffix = ("  " + " ".join(f"{k}={v}"
                                          for k, v in sorted(attrs.items()))
                          if attrs else "")
                lines.append(
                    f"  {event.fields.get('name', '?'):<22s} "
                    f"{duration:>10.4g}s  @t={event.ts:<10.4g}{suffix}")
        plain = [e for e in all_events if e.kind != "span"]
        if plain and tail > 0:
            lines.append("")
            lines.append("last events:")
            for event in plain[-tail:]:
                fields = " ".join(f"{k}={v}" for k, v in
                                  sorted(event.fields.items()))
                lines.append(f"  t={event.ts:<10.4g} {event.kind:<14s} "
                             f"{fields}")
    return "\n".join(lines)
