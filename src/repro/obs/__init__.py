"""Observability for the PARMONC runtime: metrics, traces, events.

The paper's §2.2 already gestures at this — rank 0 writes
``func_log.dat`` so users can "monitor the statistical error" mid-run.
This package makes the runtime's behaviour observable as first-class
data:

* :mod:`repro.obs.metrics` — zero-dependency counters, gauges and
  histograms with exact snapshot/merge semantics.
* :mod:`repro.obs.tracing` — spans with an explicit, swappable clock so
  the discrete-event backend traces in virtual time.
* :mod:`repro.obs.events` — a structured JSONL run record.
* :mod:`repro.obs.telemetry` — the per-worker stats pipeline rolled up
  to rank 0 and written under ``parmonc_data/telemetry/``.
* :mod:`repro.obs.render` — the text views behind
  ``parmonc-report --telemetry`` and ``parmonc-telemetry``.
* :mod:`repro.obs.log` — library logging hygiene
  (:func:`configure_logging`).

Telemetry is opt-in: pass ``telemetry=True`` to :func:`repro.parmonc`
(or set it on :class:`~repro.runtime.config.RunConfig`) and read the
artifacts back with :func:`read_events` / ``parmonc-report
--telemetry``.  See ``docs/observability.md``.
"""

from __future__ import annotations

from repro.obs.events import Event, EventLog, read_events
from repro.obs.log import configure_logging, install_null_handler
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    merge_metrics,
)
from repro.obs.render import load_metrics, render_telemetry
from repro.obs.telemetry import RunTelemetry, WorkerTelemetry
from repro.obs.tracing import SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_metrics",
    "SpanRecord",
    "Tracer",
    "Event",
    "EventLog",
    "read_events",
    "RunTelemetry",
    "WorkerTelemetry",
    "load_metrics",
    "render_telemetry",
    "configure_logging",
    "install_null_handler",
]
