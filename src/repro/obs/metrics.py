"""Zero-dependency metrics: counters, gauges, histograms.

The registry mirrors the moment pipeline's design (see
``stats/merging.py``): instruments accumulate locally, a
:class:`MetricsSnapshot` is an immutable plain-data copy, and snapshots
merge exactly — counters and histogram buckets are sums, so merging
per-worker snapshots on rank 0 is the same arithmetic as merging two
sessions.  Everything serializes to plain JSON types.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_metrics",
]

#: Default histogram bucket upper bounds (seconds-flavoured, exponential).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0)


class Counter:
    """A monotonically increasing count (messages sent, stale drops, ...)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter; negative increments are rejected."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self._value += amount


class Gauge:
    """A point-in-time value (queue depth, per-rank volume, ...)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Last set value."""
        return self._value

    def set(self, value: float) -> None:
        """Record the current level."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the level by ``amount`` (may be negative)."""
        self._value += amount


@dataclass(frozen=True)
class HistogramData:
    """Immutable histogram state: cumulative stats plus bucket counts.

    Attributes:
        count: Number of observations.
        total: Sum of observations.
        minimum: Smallest observation (``inf`` when empty).
        maximum: Largest observation (``-inf`` when empty).
        bounds: Bucket upper bounds, ascending; an implicit ``+inf``
            bucket follows the last bound.
        buckets: Per-bucket observation counts, ``len(bounds) + 1`` long.
    """

    count: int
    total: float
    minimum: float
    maximum: float
    bounds: tuple[float, ...]
    buckets: tuple[int, ...]

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """Serialize to plain JSON types."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "HistogramData":
        """Deserialize a payload produced by :meth:`to_dict`."""
        try:
            count = int(data["count"])
            return cls(
                count=count,
                total=float(data["total"]),
                minimum=(float(data["min"]) if data.get("min") is not None
                         else math.inf),
                maximum=(float(data["max"]) if data.get("max") is not None
                         else -math.inf),
                bounds=tuple(float(b) for b in data["bounds"]),
                buckets=tuple(int(b) for b in data["buckets"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed histogram payload: {exc}") from exc

    def merged(self, other: "HistogramData") -> "HistogramData":
        """Exact merge of two histograms with identical bounds."""
        if self.bounds != other.bounds:
            raise ConfigurationError(
                f"cannot merge histograms with bounds {self.bounds} "
                f"and {other.bounds}")
        return HistogramData(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            bounds=self.bounds,
            buckets=tuple(a + b for a, b in zip(self.buckets,
                                                other.buckets)))


class Histogram:
    """Distribution of observations over fixed exponential-ish buckets."""

    def __init__(self, name: str,
                 bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self._bounds = tuple(sorted(float(b) for b in bounds))
        if not self._bounds:
            raise ConfigurationError(
                f"histogram {name!r} needs at least one bucket bound")
        self._buckets = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        """Number of observations so far."""
        return self._count

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._count += 1
        self._total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        for index, bound in enumerate(self._bounds):
            if value <= bound:
                self._buckets[index] += 1
                return
        self._buckets[-1] += 1

    def data(self) -> HistogramData:
        """Immutable copy of the histogram state."""
        return HistogramData(
            count=self._count, total=self._total, minimum=self._min,
            maximum=self._max, bounds=self._bounds,
            buckets=tuple(self._buckets))


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable copy of a registry's state at one instant.

    The unit of worker-to-collector metrics transport and of on-disk
    persistence (``parmonc_data/telemetry/metrics.json``).
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramData] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Serialize to plain JSON types."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: data.to_dict()
                           for name, data in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsSnapshot":
        """Deserialize a payload produced by :meth:`to_dict`."""
        try:
            return cls(
                counters={str(k): float(v)
                          for k, v in dict(data.get("counters", {})).items()},
                gauges={str(k): float(v)
                        for k, v in dict(data.get("gauges", {})).items()},
                histograms={
                    str(k): HistogramData.from_dict(v)
                    for k, v in dict(data.get("histograms", {})).items()})
        except (TypeError, ValueError, AttributeError) as exc:
            raise ConfigurationError(
                f"malformed metrics payload: {exc}") from exc


def merge_metrics(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Merge snapshots from workers and/or sessions into one.

    Counters and histograms add exactly (they carry sums); for gauges the
    later snapshot wins, so merge per-worker snapshots in arrival order
    and namespace per-rank gauges (``worker.3.volume``) to avoid
    collisions.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, HistogramData] = {}
    for snapshot in snapshots:
        for name, value in snapshot.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges.update(snapshot.gauges)
        for name, data in snapshot.histograms.items():
            histograms[name] = (histograms[name].merged(data)
                                if name in histograms else data)
    return MetricsSnapshot(counters=counters, gauges=gauges,
                           histograms=histograms)


class MetricsRegistry:
    """Get-or-create home of every instrument in one process.

    Names are dotted strings (``worker.3.realizations``,
    ``collector.save_seconds``); an instrument name maps to exactly one
    kind — asking for a counter where a gauge lives is an error.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, *args)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ConfigurationError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  bounds: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram under ``name`` (created with ``bounds`` once)."""
        return self._get_or_create(name, Histogram, bounds)

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> MetricsSnapshot:
        """Immutable copy of every instrument's current state."""
        counters = {}
        gauges = {}
        histograms = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.data()
        return MetricsSnapshot(counters=counters, gauges=gauges,
                               histograms=histograms)
