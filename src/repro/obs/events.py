"""The structured event log: an append-only JSONL run record.

Every line is one JSON object with at least ``ts`` (run seconds, virtual
under simulation) and ``kind``; remaining keys are the event's payload.
Kinds emitted by the runtime:

``session_start``   config echo: backend, processors, maxsv, seqnum
``worker_start``    rank, quota (+ ``recovery`` for replacement workers)
``worker_final``    rank, volume, messages, bytes
``worker_died``     rank, exitcode, volume (dead-worker detection)
``worker_recovered`` rank, replacement, reassigned, delivered
                    (``on_worker_death="reassign"`` fault recovery)
``node_failed``     rank, fail_time (simcluster fault injection)
``message``         rank, volume, final (one per collector ingest)
``stale_message``   rank, volume, kept_volume (out-of-order drop)
``late_message``    rank, volume, kept_volume (retired-rank drop)
``stale_worker``    rank, last_seen (silent-worker health flag)
``storage.quarantined``  path, quarantined, reason (a torn/corrupt
                    artifact renamed ``*.corrupt`` and skipped)
``save``            volume, eps_max, duration, save_index
``span``            name, start, end + attributes (from the tracer)
``session_end``     volume, elapsed, t_comp (when virtual)

Events buffer in memory and flush to ``telemetry/events.jsonl`` at save
points and at session end, so a crashed run still leaves a usable
record of everything up to its last averaging round.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.exceptions import ConfigurationError

__all__ = ["Event", "EventLog", "read_events"]


@dataclass(frozen=True)
class Event:
    """One structured log record.

    Attributes:
        ts: Run time in seconds (virtual under simulation).
        kind: Event type, one of the kinds documented in the module
            docstring (user code may add its own).
        fields: Payload; must be JSON-serializable plain data.
    """

    ts: float
    kind: str
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSONL line body."""
        return {"ts": self.ts, "kind": self.kind, **self.fields}


class EventLog:
    """In-memory event buffer with a JSONL sink.

    Args:
        clock: Time source for events appended without an explicit
            ``ts``; swap in a virtual clock under simulation.
        path: Optional JSONL destination; without one the log is purely
            in-memory (inspect via :attr:`events`).
        epoch: Clock value of the run's start; subtracted from every
            timestamp so real-time backends log run-relative seconds
            while the virtual backend keeps epoch 0.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 path: Path | str | None = None,
                 epoch: float = 0.0) -> None:
        self._clock = clock
        self._epoch = epoch
        self._path = Path(path) if path is not None else None
        self._events: list[Event] = []
        self._flushed = 0

    @property
    def events(self) -> tuple[Event, ...]:
        """Every event appended so far, in order."""
        return tuple(self._events)

    @property
    def path(self) -> Path | None:
        """The JSONL sink path (None for in-memory logs)."""
        return self._path

    @property
    def epoch(self) -> float:
        """The clock value subtracted from every timestamp."""
        return self._epoch

    def append(self, kind: str, ts: float | None = None, **fields) -> Event:
        """Record one event; ``ts`` defaults to the log's clock.

        Explicit ``ts`` values must come from the same clock; the log
        shifts them onto the run-relative axis itself.
        """
        event = Event(ts=(self._clock() if ts is None else ts) - self._epoch,
                      kind=kind, fields=fields)
        self._events.append(event)
        return event

    def by_kind(self, kind: str) -> tuple[Event, ...]:
        """All events of one kind."""
        return tuple(e for e in self._events if e.kind == kind)

    def flush(self) -> None:
        """Append any unflushed events to the JSONL sink."""
        if self._path is None or self._flushed >= len(self._events):
            return
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with self._path.open("a") as handle:
            for event in self._events[self._flushed:]:
                handle.write(json.dumps(event.to_dict()) + "\n")
        self._flushed = len(self._events)


def read_events(path: Path | str, kind: str | None = None) -> Iterator[Event]:
    """Iterate the events of a ``telemetry/events.jsonl`` file.

    Args:
        path: The JSONL file written by a telemetry-enabled run.
        kind: Optional filter; yield only events of this kind.

    Raises:
        ConfigurationError: On a malformed line (truncated trailing
            lines from a crashed run are skipped, not fatal).
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no event log at {path}")
    with path.open() as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                ts = float(payload.pop("ts"))
                event_kind = str(payload.pop("kind"))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # A crash mid-write can truncate the final line; tolerate
                # exactly that, reject garbage anywhere else.
                remainder = handle.read().strip()
                if remainder:
                    raise ConfigurationError(
                        f"malformed event at {path}:{number}")
                continue
            if kind is None or event_kind == kind:
                yield Event(ts=ts, kind=event_kind, fields=payload)
