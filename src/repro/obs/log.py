"""Library logging hygiene.

``repro`` is a library: it must never print to a user's stderr unless
asked.  The package installs a :class:`logging.NullHandler` on its root
logger at import time (see ``repro/__init__.py``), and programs that
*do* want to see the runtime's logs call :func:`configure_logging` once
instead of fighting ``basicConfig``.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["configure_logging", "install_null_handler"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: Name of the library's root logger.
ROOT_LOGGER = "repro"


def install_null_handler() -> None:
    """Attach a NullHandler to the ``repro`` root logger (idempotent).

    Called from ``repro/__init__.py`` so that module-level loggers such
    as ``repro.runtime.collector`` never trigger Python's "no handlers
    could be found" warning inside user programs.
    """
    root = logging.getLogger(ROOT_LOGGER)
    if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
        root.addHandler(logging.NullHandler())


def configure_logging(level: int | str = logging.INFO,
                      stream: IO[str] | None = None,
                      fmt: str = _FORMAT) -> logging.Handler:
    """Route the library's logs to a stream (default stderr).

    Idempotent: repeated calls reconfigure the single handler installed
    by the first call instead of stacking duplicates.

    Args:
        level: Threshold for the ``repro`` logger tree.
        stream: Destination; defaults to ``sys.stderr``.
        fmt: Log line format.

    Returns:
        The stream handler attached to the ``repro`` root logger.
    """
    root = logging.getLogger(ROOT_LOGGER)
    handler = next(
        (h for h in root.handlers
         if isinstance(h, logging.StreamHandler)
         and not isinstance(h, logging.NullHandler)
         and getattr(h, "_repro_configured", False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_configured = True  # type: ignore[attr-defined]
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setFormatter(logging.Formatter(fmt))
    handler.setLevel(level)
    root.setLevel(level)
    return handler
