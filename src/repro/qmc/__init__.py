"""Randomized quasi-Monte Carlo on the PARMONC stream hierarchy.

Low-discrepancy point sets (Halton sequences, rank-1 lattices) wrapped
as PARMONC realizations via Cranley–Patterson shifts: each realization
is one independent randomized-QMC batch estimate whose shift comes from
the realization's own RNG substream.  The §2.1 error machinery, the
parallel runtime and resumption all apply unchanged, while smooth
integrands converge far faster than plain Monte Carlo — the crossover
is measured in ``benchmarks/test_bench_qmc.py``.
"""

from __future__ import annotations

from repro.qmc.halton import (
    PRIMES,
    HaltonSequence,
    halton_points,
    radical_inverse,
)
from repro.qmc.lattice import (
    fibonacci_lattice,
    korobov_generator,
    lattice_points,
    p2_criterion,
)
from repro.qmc.rqmc import (
    mc_batch_realization,
    rqmc_halton_realization,
    rqmc_lattice_realization,
    shifted_batch_mean,
)

__all__ = [
    "radical_inverse",
    "halton_points",
    "HaltonSequence",
    "PRIMES",
    "lattice_points",
    "fibonacci_lattice",
    "korobov_generator",
    "p2_criterion",
    "shifted_batch_mean",
    "rqmc_halton_realization",
    "rqmc_lattice_realization",
    "mc_batch_realization",
]
