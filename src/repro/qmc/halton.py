"""The Halton low-discrepancy sequence.

The ``i``-th Halton point in dimension ``d`` is the vector of radical
inverses of ``i`` in the first ``d`` prime bases.  Implemented from
scratch (van der Corput digit reversal), with the index offset
starting at 1 to avoid the all-zeros point.

Raw Halton points are deterministic; randomized estimation uses a
Cranley–Patterson shift (see :mod:`repro.qmc.rqmc`), which preserves
the low discrepancy while making each shifted batch an unbiased
estimator.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["PRIMES", "radical_inverse", "halton_points",
           "HaltonSequence"]

#: The first 32 primes — Halton bases for up to 32 dimensions.
PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
          59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
          127, 131)


def radical_inverse(index: int, base: int) -> float:
    """Reverse the digits of ``index`` in ``base`` about the point.

    ``radical_inverse(6, 2)`` reverses binary ``110`` to ``0.011`` =
    0.375.
    """
    if index < 0:
        raise ConfigurationError(f"index must be >= 0, got {index}")
    if base < 2:
        raise ConfigurationError(f"base must be >= 2, got {base}")
    result = 0.0
    scale = 1.0 / base
    while index > 0:
        index, digit = divmod(index, base)
        result += digit * scale
        scale /= base
    return result


def halton_points(n: int, dim: int, start: int = 1) -> np.ndarray:
    """The first ``n`` Halton points in ``dim`` dimensions.

    Args:
        n: Number of points.
        dim: Dimension; at most ``len(PRIMES)``.
        start: Index of the first point (default 1, skipping the
            origin).

    Returns:
        An ``(n, dim)`` float64 array with entries in [0, 1).
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if not 1 <= dim <= len(PRIMES):
        raise ConfigurationError(
            f"dimension must be in [1, {len(PRIMES)}], got {dim}")
    if start < 0:
        raise ConfigurationError(f"start must be >= 0, got {start}")
    points = np.empty((n, dim), dtype=np.float64)
    for column, base in enumerate(PRIMES[:dim]):
        for row in range(n):
            points[row, column] = radical_inverse(start + row, base)
    return points


class HaltonSequence:
    """A stateful Halton point stream.

    Args:
        dim: Dimension (up to 32).
        start: First index (default 1).

    Example:
        >>> seq = HaltonSequence(2)
        >>> seq.next_points(2).tolist()
        [[0.5, 0.3333333333333333], [0.25, 0.6666666666666666]]
    """

    def __init__(self, dim: int, start: int = 1) -> None:
        if not 1 <= dim <= len(PRIMES):
            raise ConfigurationError(
                f"dimension must be in [1, {len(PRIMES)}], got {dim}")
        if start < 0:
            raise ConfigurationError(f"start must be >= 0, got {start}")
        self._dim = dim
        self._next = start

    @property
    def dim(self) -> int:
        """Point dimension."""
        return self._dim

    @property
    def next_index(self) -> int:
        """Index of the next emitted point."""
        return self._next

    def next_points(self, n: int) -> np.ndarray:
        """Emit the next ``n`` points of the sequence."""
        points = halton_points(n, self._dim, start=self._next)
        self._next += n
        return points
