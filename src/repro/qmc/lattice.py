"""Rank-1 lattice rules.

A rank-1 lattice with ``n`` points and generator vector ``z`` is

    x_i = (i * z / n) mod 1,    i = 0 .. n-1.

For periodic smooth integrands a good generator gives errors of order
``n^-alpha`` — far beyond the Monte Carlo ``n^-1/2``.  Two
constructions are provided:

* :func:`fibonacci_lattice` — the classical optimal 2-D family,
  ``n = F_k``, ``z = (1, F_{k-1})``;
* :func:`korobov_generator` — a brute-force search for the Korobov
  parameter ``a`` (``z = (1, a, a^2, ...) mod n``) minimizing the
  ``P_2`` worst-case criterion, computed exactly via the Bernoulli
  polynomial identity.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["lattice_points", "fibonacci_lattice", "korobov_generator",
           "p2_criterion"]


def lattice_points(n: int, generator: tuple[int, ...]) -> np.ndarray:
    """The ``n`` points of the rank-1 lattice with the given generator."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if not generator:
        raise ConfigurationError("generator vector must be non-empty")
    z = np.asarray(generator, dtype=np.float64)
    indices = np.arange(n, dtype=np.float64)[:, None]
    return (indices * z[None, :] / n) % 1.0


def fibonacci_lattice(k: int) -> tuple[int, tuple[int, int]]:
    """The 2-D Fibonacci lattice ``(n, z) = (F_k, (1, F_{k-1}))``.

    Args:
        k: Fibonacci index, at least 3 (so n >= 2).

    Returns:
        ``(n, generator)`` ready for :func:`lattice_points`.
    """
    if k < 3:
        raise ConfigurationError(f"k must be >= 3, got {k}")
    previous, current = 1, 1
    for _ in range(k - 2):
        previous, current = current, previous + current
    return current, (1, previous)


def p2_criterion(n: int, generator: tuple[int, ...]) -> float:
    """The ``P_2`` figure of demerit of a lattice rule (lower is better).

    ``P_2 = -1 + (1/n) sum_i prod_d (1 + 2 pi^2 B_2({x_id}))`` with
    ``B_2(x) = x^2 - x + 1/6`` — the exact worst-case squared error
    over the unit ball of a dominating mixed-smoothness space.
    """
    points = lattice_points(n, generator)
    bernoulli = points * points - points + 1.0 / 6.0
    weights = 1.0 + 2.0 * np.pi ** 2 * bernoulli
    return float(np.mean(np.prod(weights, axis=1)) - 1.0)


def korobov_generator(n: int, dim: int,
                      max_candidates: int | None = None
                      ) -> tuple[int, ...]:
    """Search the Korobov family for the best ``a`` under ``P_2``.

    The Korobov generator is ``z = (1, a, a^2 mod n, ...)``; candidates
    ``a`` coprime-ish to ``n`` are scanned exhaustively (or the first
    ``max_candidates``) and the minimizer returned.  O(candidates * n *
    dim) — fine for the ``n <= 4096`` the benches use.
    """
    if n < 3:
        raise ConfigurationError(f"n must be >= 3, got {n}")
    if dim < 1:
        raise ConfigurationError(f"dim must be >= 1, got {dim}")
    best_a = 1
    best_value = float("inf")
    candidates = range(2, n // 2 + 1)
    if max_candidates is not None:
        candidates = list(candidates)[:max_candidates]
    for a in candidates:
        if np.gcd(a, n) != 1:
            continue
        generator = tuple(pow(a, power, n) for power in range(dim))
        value = p2_criterion(n, generator)
        if value < best_value:
            best_value = value
            best_a = a
    return tuple(pow(best_a, power, n) for power in range(dim))
