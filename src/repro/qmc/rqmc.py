"""Randomized QMC as PARMONC realizations.

The bridge between quasi-Monte Carlo and the PARMONC machinery: a
*realization* is one randomly shifted QMC batch mean,

    zeta = (1/N) sum_{i<N} f((x_i + U) mod 1),

with the Cranley–Patterson shift ``U`` drawn from the realization's own
RNG substream.  Each realization is therefore an independent, unbiased
estimate of the integral, so formula (1) averaging, the §2.1 error
matrices, resumption and every backend apply unchanged — while the
*within-batch* QMC structure drives the per-realization variance down
at nearly ``N^-2`` for smooth integrands (versus ``N^-1`` for a plain
Monte Carlo batch of the same size).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.qmc.halton import halton_points
from repro.qmc.lattice import lattice_points
from repro.rng.lcg128 import Lcg128

__all__ = ["shifted_batch_mean", "rqmc_halton_realization",
           "rqmc_lattice_realization", "mc_batch_realization"]


def shifted_batch_mean(integrand: Callable[[np.ndarray], float],
                       points: np.ndarray, shift: np.ndarray) -> float:
    """Mean of the integrand over a Cranley–Patterson-shifted batch."""
    points = np.asarray(points, dtype=np.float64)
    shift = np.asarray(shift, dtype=np.float64)
    if points.ndim != 2 or shift.shape != (points.shape[1],):
        raise ConfigurationError(
            f"need (n, d) points and a (d,) shift, got {points.shape} "
            f"and {shift.shape}")
    shifted = (points + shift[None, :]) % 1.0
    return float(np.mean([integrand(row) for row in shifted]))


def _draw_shift(rng: Lcg128, dim: int) -> np.ndarray:
    return np.array([rng.random() for _ in range(dim)])


def rqmc_halton_realization(integrand: Callable[[np.ndarray], float],
                            dim: int, batch_size: int
                            ) -> Callable[[Lcg128], float]:
    """Build a realization: one shifted-Halton batch mean.

    Args:
        integrand: ``f(x) -> float`` on the unit cube, ``x`` of shape
            ``(dim,)``.
        dim: Integrand dimension (<= 32).
        batch_size: QMC points per realization.

    The Halton batch is fixed (computed once); only the shift varies
    per realization, so consumption is exactly ``dim`` uniforms.
    """
    if batch_size < 1:
        raise ConfigurationError(
            f"batch_size must be >= 1, got {batch_size}")
    batch = halton_points(batch_size, dim)

    def realization(rng: Lcg128) -> float:
        return shifted_batch_mean(integrand, batch,
                                  _draw_shift(rng, dim))

    return realization


def rqmc_lattice_realization(integrand: Callable[[np.ndarray], float],
                             n: int, generator: tuple[int, ...]
                             ) -> Callable[[Lcg128], float]:
    """Build a realization: one shifted rank-1-lattice batch mean.

    For periodic smooth integrands the lattice batch converges at
    ``n^-alpha``; for non-periodic ones apply a periodizing transform
    first or prefer the Halton variant.
    """
    batch = lattice_points(n, generator)
    dim = batch.shape[1]

    def realization(rng: Lcg128) -> float:
        return shifted_batch_mean(integrand, batch,
                                  _draw_shift(rng, dim))

    return realization


def mc_batch_realization(integrand: Callable[[np.ndarray], float],
                         dim: int, batch_size: int
                         ) -> Callable[[Lcg128], float]:
    """The fair comparator: a plain Monte Carlo batch of the same size.

    Each realization averages ``batch_size`` iid evaluations, so its
    variance is ``Var f / batch_size`` — the baseline the RQMC variants
    must beat to justify their structure.
    """
    if batch_size < 1:
        raise ConfigurationError(
            f"batch_size must be >= 1, got {batch_size}")

    def realization(rng: Lcg128) -> float:
        total = 0.0
        for _ in range(batch_size):
            point = np.array([rng.random() for _ in range(dim)])
            total += integrand(point)
        return total / batch_size

    return realization
