"""Multi-job scheduler: N experiments multiplexed over one backend.

PARMONC's RNG hierarchy carves out 2**10 independent *experiments*
(``seqnum`` subsequences), but the historical engine ran exactly one
per process.  The :class:`Scheduler` drives N concurrent
:class:`~repro.runtime.job.Job` instances over one shared backend
worker pool:

* **Fair share.**  Worker slots are handed out by per-job deficit
  counters: every dispatch charges the job ``1 / priority``, and the
  job with the highest deficit (ties broken by submission order) wins
  the next free slot, so long-run dispatch rates are proportional to
  priorities.  With unbounded slots (the classic path) every pending
  assignment is dispatched at once, exactly like the old engine.
* **Quotas.**  ``JobSpec.max_workers`` caps a job's concurrent
  workers; ``workers=`` caps the whole pool.
* **Admission control.**  ``max_jobs=`` bounds the queue;
  :meth:`submit` raises :class:`~repro.exceptions.AdmissionError`
  (back-pressure) once the bound is reached and counts the rejection.
* **SLA tracking.**  Each job records submit-to-start wait, makespan
  and advisory deadline misses; :meth:`sla_report` returns the whole
  picture and each job's record also lands in its own telemetry and
  on its :class:`~repro.runtime.result.RunResult`.

The drain loop, death handling and finalization preserve the
historical engine's statement order, so a single anonymous job (what
:class:`~repro.runtime.engine.Engine` now submits under the hood) is
bit-identical to the pre-split engine — same messages, same telemetry
events, same save-point bytes.

Backends that can interleave assignments from different jobs declare
``supports_shared_jobs = True`` (sequential, multiprocess,
distributed); the discrete-event cluster simulation keeps its
single-job contract and is rejected at submit time.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Sequence

from repro.exceptions import (
    AdmissionError,
    BackendError,
    ConfigurationError,
    ReproError,
)
from repro.runtime.engine import (
    _POLL_SECONDS,
    Backend,
    WorkerAssignment,
    shared_job_backends,
)
from repro.runtime.job import Job, JobSpec, JobStatus

__all__ = ["Scheduler"]


class Scheduler:
    """Run a batch of jobs over one shared backend.

    Args:
        backend: The execution strategy all jobs share.
        workers: Global cap on concurrently running workers across all
            jobs (None = unbounded, the classic behaviour).
        max_jobs: Admission bound on the job queue; further
            :meth:`submit` calls raise
            :class:`~repro.exceptions.AdmissionError`.

    Usage::

        scheduler = Scheduler(MultiprocessBackend(), workers=4)
        jobs = [scheduler.submit(spec) for spec in specs]
        scheduler.run()
        results = [job.result for job in jobs]
    """

    def __init__(self, backend: Backend, *, workers: int | None = None,
                 max_jobs: int | None = None, _engine=None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(
                f"scheduler workers must be >= 1, got {workers}")
        if max_jobs is not None and max_jobs < 1:
            raise ConfigurationError(
                f"scheduler max_jobs must be >= 1, got {max_jobs}")
        self._backend = backend
        self._workers = workers
        self._max_jobs = max_jobs
        #: Classic single-run mode: the engine wrapper passes itself so
        #: the backend binds the engine (the historical surface) and
        #: errors propagate instead of being contained per job.
        self._engine = _engine
        self._jobs: list[Job] = []
        self._by_id: dict[str | None, Job] = {}
        self._ran = False
        self.started = 0.0
        self.rejected = 0
        self.stray_messages = 0
        # -- streaming-service state -----------------------------------
        self._lock = threading.RLock()
        self._state_cond = threading.Condition(self._lock)
        #: True while the event-driven service accepts live submissions
        #: (set by :meth:`start`/:meth:`serve`; backends read it at bind
        #: time to switch to the streaming handshake).
        self.streaming = False
        self._serving = False
        self._stop = False
        self._thread: threading.Thread | None = None
        self._bound = False
        #: Jobs admitted by submit() but not yet opened by the loop.
        self._admissions: deque[Job] = deque()
        #: RUNNING jobs with a cancellation pending loop-side teardown.
        self._cancels: deque[Job] = deque()
        #: Jobs not yet DONE/FAILED/CANCELLED (the admission bound).
        self._active = 0
        #: Monotonic submission counter; unlike ``len(self._jobs)`` it
        #: survives :meth:`prune`, keeping ids and indices unique.
        self._submitted = 0
        # Backend-facing surface when the scheduler itself is bound
        # (shared mode).  ``config`` becomes a representative config at
        # run(); per-job context flows through job_context() instead.
        self.routine = None
        self.config = None
        self.collector = None
        self.telemetry = None

    # -- submission -----------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Queue one job; returns its live :class:`Job` handle.

        In the sealed batch mode all submissions must precede
        :meth:`run`.  Once the streaming service is live
        (:meth:`start`/:meth:`serve`) this is callable at any time,
        from any thread: the job is admitted by the service loop and
        starts competing for workers mid-run.

        Raises:
            AdmissionError: The scheduler is at its ``max_jobs`` bound
                of active (not yet finished) jobs.
            ConfigurationError: The spec cannot run on this backend or
                collides with an already-submitted job.
        """
        with self._state_cond:
            if self._ran and not self.streaming:
                raise ConfigurationError(
                    "jobs must be submitted before the scheduler runs")
            if self.streaming and self._stop:
                raise ConfigurationError(
                    "the scheduler service is shutting down and no "
                    "longer admits jobs")
            if self._max_jobs is not None and self._active >= self._max_jobs:
                self.rejected += 1
                raise AdmissionError(
                    f"job queue is at capacity ({self._max_jobs} jobs); "
                    f"retry after a job finishes or raise max_jobs")
            anonymous = self._engine is not None
            if anonymous:
                if self._jobs:
                    raise ConfigurationError(
                        "the classic engine path runs exactly one job")
                job_id = None
            else:
                self._validate_shared(spec)
                job_id = spec.name or f"job-{self._submitted}"
                if job_id in self._by_id:
                    raise ConfigurationError(
                        f"duplicate job name {job_id!r}")
            job = Job(spec, job_id, self._submitted)
            job.on_terminal = self._on_job_terminal
            job.submitted_wall = time.monotonic()
            self._jobs.append(job)
            self._by_id[job_id] = job
            self._submitted += 1
            self._active += 1
            if self.streaming:
                self._admissions.append(job)
                self._state_cond.notify_all()
            return job

    def _validate_shared(self, spec: JobSpec) -> None:
        if not getattr(self._backend, "supports_shared_jobs", False):
            supported = ", ".join(shared_job_backends()) or "none"
            raise ConfigurationError(
                f"backend {getattr(self._backend, 'name', '?')!r} cannot "
                f"multiplex concurrent jobs (backends that can: "
                f"{supported}); run them one at a time through "
                f"parmonc()")
        config = spec.config
        if (config.reduction_fanout is not None
                and not getattr(self._backend, "supports_job_reduction",
                                False)):
            raise ConfigurationError(
                f"backend {getattr(self._backend, 'name', '?')!r} does "
                f"not plan job-scoped reduction trees; drop "
                f"reduction_fanout or use the multiprocess backend")
        if config.transport != "queue":
            raise ConfigurationError(
                f"shared-pool jobs require transport='queue', got "
                f"{config.transport!r}")
        if spec.use_files:
            new_dir = config.data_dir.resolve()
            for other in self._jobs:
                if not other.spec.use_files:
                    continue
                if other.spec.config.data_dir.resolve() == new_dir:
                    raise ConfigurationError(
                        f"jobs {other.id!r} and {spec.name!r} would "
                        f"share the session directory {new_dir}; give "
                        f"each job its own workdir")

    # -- backend-facing context ----------------------------------------

    def job_context(self, job_id: str | None) -> Job:
        """The owning job's context (config, routine, collector, ...)."""
        job = self._by_id.get(job_id)
        if job is None:
            raise BackendError(f"unknown job {job_id!r}")
        return job

    @property
    def all_complete(self) -> bool:
        """True once every job has left the drain loop."""
        return all(job.status in JobStatus.TERMINAL
                   for job in self._jobs)

    @property
    def jobs(self) -> tuple[Job, ...]:
        """Submitted jobs in submission order."""
        return tuple(self._jobs)

    # -- message path ---------------------------------------------------

    def ingest(self, message, now: float) -> None:
        """Route one worker/reducer message to its owning job."""
        with self._lock:
            job = self._by_id.get(getattr(message, "job", None))
            if job is None or job.status is not JobStatus.RUNNING:
                # Late traffic from an already-finished or failed job.
                self.stray_messages += 1
                return
            for rank in job.ingest(message, now):
                job.in_flight.discard(rank)
            if job.collector.complete:
                job.mark_complete(completed=True)

    # -- the run --------------------------------------------------------

    def run(self) -> list[Job]:
        """Drive every submitted job to completion; returns the jobs.

        Raises:
            BackendError: In classic mode, exactly when the historical
                engine would have raised (worker death under the
                ``"fail"`` policy, impossible recovery).  In shared
                mode those errors fail only the owning job; backend
                and programming errors still propagate.
        """
        if self._ran:
            raise ConfigurationError("a scheduler can only run once")
        if not self._jobs:
            raise ConfigurationError("no jobs were submitted")
        self._ran = True
        backend = self._backend
        engine = self._engine
        self.started = time.monotonic()
        if engine is not None:
            engine.started = self.started
        for job in self._jobs:
            job.open(backend, self.started)
        if engine is not None:
            only = self._jobs[0]
            engine.collector = only.collector
            engine.telemetry = only.telemetry
            bind_target = engine
        else:
            # A representative config for backend-level knobs (start
            # method, processors for pool sizing); per-job settings are
            # read through job_context() at spawn time.
            self.config = self._jobs[0].spec.config.with_updates(
                time_limit=None, reduction_fanout=None,
                transport="queue")
            bind_target = self
        backend.bind(bind_target)
        self._bound = True
        epoch = backend.clock()
        for job in self._jobs:
            job.collector.mark_epoch(epoch)
        if engine is None:
            prepare = getattr(backend, "prepare_job", None)
            if prepare is not None:
                for job in self._jobs:
                    prepare(job)
        for job in self._jobs:
            job.status = JobStatus.RUNNING
            if engine is not None:
                job.pending.extend(backend.plan())
            else:
                job.pending.extend(job.initial_plan())
        self._dispatch()
        drain_clock = backend.clock()
        for job in self._jobs:
            job.drain_started = drain_clock
        try:
            self._drain()
        finally:
            backend.shutdown()
        for job in self._jobs:
            if job.telemetry is not None and job.drain_started is not None:
                job.telemetry.tracer.record(
                    "collector.drain", job.drain_started, backend.clock(),
                    messages=job.collector.receive_count)
        backend.finish()
        for job in self._jobs:
            if job.status is JobStatus.FAILED:
                continue
            job.finalize(backend, self.started)
        return list(self._jobs)

    def _drain(self) -> None:
        backend = self._backend
        while True:
            running = [job for job in self._jobs
                       if job.status is JobStatus.RUNNING]
            if not running:
                break
            self._dispatch()
            self._expire_deadlines(running)
            if backend.done:
                # The backend can produce nothing further (e.g. the
                # sequential loop ran out of assignments under a time
                # limit); whatever is incomplete stays incomplete.
                for job in running:
                    if job.status is JobStatus.RUNNING:
                        job.mark_complete(
                            completed=job.collector.complete)
                break
            message = backend.poll(_POLL_SECONDS)
            if message is not None:
                self.ingest(message, backend.clock())
                continue
            now = backend.clock()
            deaths = backend.reap()
            if deaths:
                self._handle_deaths(deaths, now)
            for job in self._jobs:
                if job.status is JobStatus.RUNNING:
                    job.flag_stale(now)

    def _expire_deadlines(self, running: Sequence[Job]) -> None:
        """Cancel undispatched work of jobs past their time limit.

        Dispatched workers honour the same deadline themselves (it is
        passed to ``run_worker``), ship a final pass and complete the
        job; only never-started assignments need dropping here.  The
        classic path keeps its historical backend-side handling
        (``backend.deadline``), so this only acts on shared-mode jobs.
        """
        if self._engine is not None:
            return
        now = self._backend.clock()
        for job in running:
            if job.status is not JobStatus.RUNNING:
                continue
            if job.deadline is None or now < job.deadline:
                continue
            job.pending.clear()
            if not job.in_flight:
                job.mark_complete(completed=job.collector.complete)

    # -- dispatch -------------------------------------------------------

    def _dispatch(self) -> None:
        """Hand free worker slots to pending assignments, fairly.

        Unbounded slots (the classic path) dispatch everything at once
        — a single ``backend.spawn`` with the full plan, exactly like
        the old engine.  Bounded slots run the deficit auction: highest
        deficit wins, each dispatch charges ``1 / priority``.
        """
        contenders = [job for job in self._jobs
                      if job.status is JobStatus.RUNNING and job.pending]
        if not contenders:
            return
        batches: dict[int, list[WorkerAssignment]] = {}

        def headroom(job: Job) -> int | None:
            cap = job.spec.max_workers
            if cap is None:
                return None
            used = len(job.in_flight) + len(batches.get(job.index, ()))
            return cap - used

        if self._workers is None:
            for job in contenders:
                while job.pending:
                    room = headroom(job)
                    if room is not None and room <= 0:
                        break
                    batches.setdefault(job.index, []).append(
                        job.pending.popleft())
        else:
            busy = sum(len(job.in_flight) for job in self._jobs)
            free = self._workers - busy
            while free > 0:
                candidates = [job for job in contenders
                              if job.pending
                              and (headroom(job) is None
                                   or headroom(job) > 0)]
                if not candidates:
                    break
                job = max(candidates,
                          key=lambda j: (j.deficit, -j.index))
                batches.setdefault(job.index, []).append(
                    job.pending.popleft())
                job.deficit -= 1.0 / job.priority
                free -= 1
        for job in contenders:
            batch = batches.get(job.index)
            if batch:
                self._spawn_for(job, batch)

    def _spawn_for(self, job: Job, batch: list[WorkerAssignment]) -> None:
        extras = self._backend.spawn(batch)
        if job.started_wall is None:
            job.started_wall = time.monotonic()
        job.record_spawn(batch, extras)

    # -- fault handling -------------------------------------------------

    def _handle_deaths(self, deaths, now: float) -> None:
        by_job: dict[str | None, list] = {}
        for death in deaths:
            by_job.setdefault(death.job, []).append(death)
        for job_id in sorted(
                by_job,
                key=lambda jid: self._by_id[jid].index
                if jid in self._by_id else -1):
            job = self._by_id.get(job_id)
            if job is None or job.status is not JobStatus.RUNNING:
                continue  # stray deaths of finished jobs
            try:
                job.handle_deaths(by_job[job_id], now, self._spawn_for)
            except BackendError as error:
                if self._engine is not None:
                    raise
                job.fail(error)

    # -- streaming service ----------------------------------------------
    #
    # The sealed run() above is the historical batch path and is kept
    # statement-for-statement identical.  The service below is a second
    # driver over the same dispatch/ingest/death machinery: jobs are
    # admitted, cancelled and finalized *while the loop runs*, so the
    # scheduler behaves like the long-lived G/G/c/K station the
    # queueing model in apps/queueing.py describes.

    def start(self, on_idle: Callable[[], object] | None = None
              ) -> threading.Thread:
        """Run :meth:`serve` on a background thread; returns the thread.

        ``submit``/``cancel``/``drain``/``shutdown`` are then callable
        from the caller's thread while the service loop owns the
        backend.
        """
        with self._lock:
            if self._ran:
                raise ConfigurationError("a scheduler can only run once")
            self.streaming = True
        thread = threading.Thread(
            target=self.serve, kwargs={"on_idle": on_idle},
            name="parmonc-scheduler", daemon=True)
        self._thread = thread
        thread.start()
        return thread

    def serve(self, on_idle: Callable[[], object] | None = None) -> None:
        """The live admission loop: block until :meth:`shutdown`.

        Args:
            on_idle: Optional tick callback invoked once per loop
                iteration (at least every poll interval) — the CLI
                hooks its queue-file watcher here.  Returning ``False``
                requests shutdown: the loop finishes the jobs it has,
                admits nothing further and returns.
        """
        with self._state_cond:
            if self._ran and not self.streaming:
                raise ConfigurationError("a scheduler can only run once")
            if self._serving:
                raise ConfigurationError(
                    "the scheduler service is already running")
            self._ran = True
            self.streaming = True
            self._serving = True
            if not self.started:
                self.started = time.monotonic()
            self._state_cond.notify_all()
        try:
            while True:
                busy = self.step()
                if on_idle is not None and on_idle() is False:
                    with self._state_cond:
                        self._stop = True
                        self._state_cond.notify_all()
                with self._state_cond:
                    idle = (not busy and not self._admissions
                            and not self._cancels)
                    if idle and self._stop:
                        break
                    if idle:
                        # Park until a submit/cancel/shutdown wakes us
                        # (bounded so the on_idle watcher keeps ticking).
                        self._state_cond.wait(_POLL_SECONDS)
        finally:
            with self._state_cond:
                self._serving = False
                self._state_cond.notify_all()
            if self._bound:
                self._backend.shutdown()

    def step(self, poll_timeout: float = _POLL_SECONDS) -> bool:
        """One service-loop iteration; returns True while work remains.

        Order mirrors one turn of the sealed drain loop: admit, apply
        cancellations, dispatch, expire deadlines, poll/ingest, reap
        deaths, flag stale workers, finalize whatever drained.  Public
        so synchronous harnesses (the load study, tests) can drive the
        service without a thread.
        """
        backend = self._backend
        with self._lock:
            self._admit_pending()
            self._apply_cancels()
            running = [job for job in self._jobs
                       if job.status is JobStatus.RUNNING]
            if running:
                self._dispatch()
                self._expire_deadlines(running)
        if running:
            message = backend.poll(poll_timeout)
            if message is not None:
                self.ingest(message, backend.clock())
            else:
                now = backend.clock()
                deaths = backend.reap()
                with self._lock:
                    if deaths:
                        self._handle_deaths(deaths, now)
                    for job in self._jobs:
                        if job.status is JobStatus.RUNNING:
                            job.flag_stale(now)
        self._finalize_ready()
        with self._lock:
            return any(job.status not in JobStatus.FINISHED
                       for job in self._jobs)

    def _ensure_bound(self, job: Job) -> None:
        """Bind the backend lazily, at the first admission.

        The service can start with an empty queue, so the
        representative config the backend reads at bind time comes
        from the first admitted job.
        """
        if self._bound:
            return
        self.config = job.spec.config.with_updates(
            time_limit=None, reduction_fanout=None, transport="queue")
        self._backend.bind(self)
        self._bound = True

    def _admit_pending(self) -> None:
        """Open queued jobs and put their work plans in contention."""
        backend = self._backend
        while self._admissions:
            job = self._admissions.popleft()
            if job.status is not JobStatus.QUEUED:
                continue  # cancelled while queued
            self._ensure_bound(job)
            try:
                job.open(backend, time.monotonic())
                job.collector.mark_epoch(backend.clock())
                announce = getattr(backend, "announce_job", None)
                if announce is not None:
                    announce(job)
                prepare = getattr(backend, "prepare_job", None)
                if prepare is not None:
                    prepare(job)
            except ReproError as error:
                job.fail(error)
                continue
            # Join the fair-share auction where the field currently
            # stands: matching the least-charged running job means the
            # newcomer competes on equal terms from now on instead of
            # replaying dispatches it never contended for.
            job.deficit = max(
                (other.deficit for other in self._jobs
                 if other.status is JobStatus.RUNNING), default=0.0)
            job.status = JobStatus.RUNNING
            job.pending.extend(job.initial_plan())
            job.drain_started = backend.clock()

    def _apply_cancels(self) -> None:
        """Tear down backend workers of jobs cancelled while RUNNING."""
        backend = self._backend
        while self._cancels:
            job = self._cancels.popleft()
            if job.status is not JobStatus.RUNNING:
                continue
            cancel_job = getattr(backend, "cancel_job", None)
            if cancel_job is not None:
                cancel_job(job.id)
            release = getattr(backend, "release_job", None)
            if release is not None:
                release(job.id)
            job.cancel()

    def _finalize_ready(self) -> None:
        """Finalize jobs whose drain finished, inside the live loop.

        The sealed path finalizes after backend shutdown; a service
        never shuts the pool down between jobs, so each job's epilogue
        (save, merge, result assembly) runs as soon as it drains.
        ``backend.finish()`` is a no-op for every shared-capable
        backend, which is what makes the early epilogue safe.
        """
        backend = self._backend
        with self._lock:
            ready = [job for job in self._jobs
                     if job.status is JobStatus.DRAINING]
        for job in ready:
            if job.telemetry is not None and job.drain_started is not None:
                job.telemetry.tracer.record(
                    "collector.drain", job.drain_started, backend.clock(),
                    messages=job.collector.receive_count)
            release = getattr(backend, "release_job", None)
            if release is not None:
                release(job.id)
            try:
                job.finalize(backend, self.started)
            except ReproError as error:
                job.fail(error)

    def cancel(self, job: Job | str) -> bool:
        """Cancel a job by handle or id; returns True if it will stop.

        A QUEUED job is withdrawn immediately; a RUNNING job is torn
        down by the service loop (workers terminated, late messages
        counted as stray).  Jobs already draining or finished are left
        alone and ``False`` is returned.
        """
        with self._state_cond:
            if isinstance(job, str):
                resolved = self._by_id.get(job)
                if resolved is None:
                    raise ConfigurationError(f"unknown job {job!r}")
                job = resolved
            if job.status is JobStatus.QUEUED:
                job.cancel()
                self._state_cond.notify_all()
                return True
            if job.status is JobStatus.RUNNING:
                self._cancels.append(job)
                self._state_cond.notify_all()
                return True
            return False

    def wait(self, job: Job, timeout: float | None = None) -> bool:
        """Block until ``job`` reaches DONE/FAILED/CANCELLED."""
        return job.finished.wait(timeout)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted job has finished.

        Returns True when the queue is fully drained (immediately so
        when it already is), False on timeout.  With the service on a
        background thread this waits; driven synchronously it steps the
        loop itself.
        """

        def drained() -> bool:
            return (not self._admissions and not self._cancels
                    and all(job.status in JobStatus.FINISHED
                            for job in self._jobs))

        with self._state_cond:
            if self._serving or (self._thread is not None
                                 and self._thread.is_alive()):
                return self._state_cond.wait_for(drained, timeout)
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            with self._lock:
                if drained():
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            self.step()

    def shutdown(self, timeout: float | None = None) -> None:
        """Finish the admitted jobs, stop the loop, free the backend."""
        self.drain(timeout)
        with self._state_cond:
            self._stop = True
            self._state_cond.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None
        elif not self._serving:
            # Synchronously driven service: nobody else will run the
            # loop's epilogue.
            if self._bound:
                self._backend.shutdown()

    def prune(self) -> int:
        """Drop finished jobs from the live tables; returns the count.

        A long-running service under sustained traffic (the million-
        submission study) would otherwise grow its job list without
        bound.  Aggregate counters (``submitted``, ``rejected``) are
        kept; per-job results must be read before pruning.
        """
        with self._lock:
            keep = [job for job in self._jobs
                    if job.status not in JobStatus.FINISHED]
            removed = len(self._jobs) - len(keep)
            self._jobs = keep
            self._by_id = {job.id: job for job in keep}
            return removed

    def _on_job_terminal(self, job: Job) -> None:
        with self._state_cond:
            self._active -= 1
            self._state_cond.notify_all()

    # -- reporting ------------------------------------------------------

    def sla_report(self) -> dict:
        """Scheduler-level SLA summary across all named jobs."""
        with self._lock:
            jobs = [job.sla_snapshot(self.started) for job in self._jobs
                    if job.id is not None]
            missed = sum(1 for record in jobs if record["deadline_missed"])
            return {
                "workers": self._workers,
                "max_jobs": self._max_jobs,
                "jobs": jobs,
                "submitted": self._submitted,
                "rejected": self.rejected,
                "deadline_misses": missed,
                "stray_messages": self.stray_messages,
            }
