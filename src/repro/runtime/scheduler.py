"""Multi-job scheduler: N experiments multiplexed over one backend.

PARMONC's RNG hierarchy carves out 2**10 independent *experiments*
(``seqnum`` subsequences), but the historical engine ran exactly one
per process.  The :class:`Scheduler` drives N concurrent
:class:`~repro.runtime.job.Job` instances over one shared backend
worker pool:

* **Fair share.**  Worker slots are handed out by per-job deficit
  counters: every dispatch charges the job ``1 / priority``, and the
  job with the highest deficit (ties broken by submission order) wins
  the next free slot, so long-run dispatch rates are proportional to
  priorities.  With unbounded slots (the classic path) every pending
  assignment is dispatched at once, exactly like the old engine.
* **Quotas.**  ``JobSpec.max_workers`` caps a job's concurrent
  workers; ``workers=`` caps the whole pool.
* **Admission control.**  ``max_jobs=`` bounds the queue;
  :meth:`submit` raises :class:`~repro.exceptions.AdmissionError`
  (back-pressure) once the bound is reached and counts the rejection.
* **SLA tracking.**  Each job records submit-to-start wait, makespan
  and advisory deadline misses; :meth:`sla_report` returns the whole
  picture and each job's record also lands in its own telemetry and
  on its :class:`~repro.runtime.result.RunResult`.

The drain loop, death handling and finalization preserve the
historical engine's statement order, so a single anonymous job (what
:class:`~repro.runtime.engine.Engine` now submits under the hood) is
bit-identical to the pre-split engine — same messages, same telemetry
events, same save-point bytes.

Backends that can interleave assignments from different jobs declare
``supports_shared_jobs = True`` (sequential, multiprocess,
distributed); the discrete-event cluster simulation keeps its
single-job contract and is rejected at submit time.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.exceptions import (
    AdmissionError,
    BackendError,
    ConfigurationError,
)
from repro.runtime.engine import _POLL_SECONDS, Backend, WorkerAssignment
from repro.runtime.job import Job, JobSpec, JobStatus

__all__ = ["Scheduler"]


class Scheduler:
    """Run a batch of jobs over one shared backend.

    Args:
        backend: The execution strategy all jobs share.
        workers: Global cap on concurrently running workers across all
            jobs (None = unbounded, the classic behaviour).
        max_jobs: Admission bound on the job queue; further
            :meth:`submit` calls raise
            :class:`~repro.exceptions.AdmissionError`.

    Usage::

        scheduler = Scheduler(MultiprocessBackend(), workers=4)
        jobs = [scheduler.submit(spec) for spec in specs]
        scheduler.run()
        results = [job.result for job in jobs]
    """

    def __init__(self, backend: Backend, *, workers: int | None = None,
                 max_jobs: int | None = None, _engine=None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(
                f"scheduler workers must be >= 1, got {workers}")
        if max_jobs is not None and max_jobs < 1:
            raise ConfigurationError(
                f"scheduler max_jobs must be >= 1, got {max_jobs}")
        self._backend = backend
        self._workers = workers
        self._max_jobs = max_jobs
        #: Classic single-run mode: the engine wrapper passes itself so
        #: the backend binds the engine (the historical surface) and
        #: errors propagate instead of being contained per job.
        self._engine = _engine
        self._jobs: list[Job] = []
        self._by_id: dict[str | None, Job] = {}
        self._ran = False
        self.started = 0.0
        self.rejected = 0
        self.stray_messages = 0
        # Backend-facing surface when the scheduler itself is bound
        # (shared mode).  ``config`` becomes a representative config at
        # run(); per-job context flows through job_context() instead.
        self.routine = None
        self.config = None
        self.collector = None
        self.telemetry = None

    # -- submission -----------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Queue one job; returns its live :class:`Job` handle.

        Raises:
            AdmissionError: The queue is at its ``max_jobs`` bound.
            ConfigurationError: The spec cannot run on this backend or
                collides with an already-submitted job.
        """
        if self._ran:
            raise ConfigurationError(
                "jobs must be submitted before the scheduler runs")
        if self._max_jobs is not None and len(self._jobs) >= self._max_jobs:
            self.rejected += 1
            raise AdmissionError(
                f"job queue is at capacity ({self._max_jobs} jobs); "
                f"retry after a job finishes or raise max_jobs")
        anonymous = self._engine is not None
        if anonymous:
            if self._jobs:
                raise ConfigurationError(
                    "the classic engine path runs exactly one job")
            job_id = None
        else:
            self._validate_shared(spec)
            job_id = spec.name or f"job-{len(self._jobs)}"
            if job_id in self._by_id:
                raise ConfigurationError(
                    f"duplicate job name {job_id!r}")
        job = Job(spec, job_id, len(self._jobs))
        job.submitted_wall = time.monotonic()
        self._jobs.append(job)
        self._by_id[job_id] = job
        return job

    def _validate_shared(self, spec: JobSpec) -> None:
        if not getattr(self._backend, "supports_shared_jobs", False):
            raise ConfigurationError(
                f"backend {getattr(self._backend, 'name', '?')!r} cannot "
                f"multiplex concurrent jobs; run them one at a time "
                f"through parmonc()")
        config = spec.config
        if config.reduction_fanout is not None:
            raise ConfigurationError(
                "reduction trees are not job-scoped yet; submit "
                "reduced runs through the single-job path")
        if config.transport != "queue":
            raise ConfigurationError(
                f"shared-pool jobs require transport='queue', got "
                f"{config.transport!r}")
        if spec.use_files:
            new_dir = config.data_dir.resolve()
            for other in self._jobs:
                if not other.spec.use_files:
                    continue
                if other.spec.config.data_dir.resolve() == new_dir:
                    raise ConfigurationError(
                        f"jobs {other.id!r} and {spec.name!r} would "
                        f"share the session directory {new_dir}; give "
                        f"each job its own workdir")

    # -- backend-facing context ----------------------------------------

    def job_context(self, job_id: str | None) -> Job:
        """The owning job's context (config, routine, collector, ...)."""
        job = self._by_id.get(job_id)
        if job is None:
            raise BackendError(f"unknown job {job_id!r}")
        return job

    @property
    def all_complete(self) -> bool:
        """True once every job has left the drain loop."""
        return all(job.status in JobStatus.TERMINAL
                   for job in self._jobs)

    @property
    def jobs(self) -> tuple[Job, ...]:
        """Submitted jobs in submission order."""
        return tuple(self._jobs)

    # -- message path ---------------------------------------------------

    def ingest(self, message, now: float) -> None:
        """Route one worker/reducer message to its owning job."""
        job = self._by_id.get(getattr(message, "job", None))
        if job is None or job.status is not JobStatus.RUNNING:
            # Late traffic from an already-finished or failed job.
            self.stray_messages += 1
            return
        for rank in job.ingest(message, now):
            job.in_flight.discard(rank)
        if job.collector.complete:
            job.mark_complete(completed=True)

    # -- the run --------------------------------------------------------

    def run(self) -> list[Job]:
        """Drive every submitted job to completion; returns the jobs.

        Raises:
            BackendError: In classic mode, exactly when the historical
                engine would have raised (worker death under the
                ``"fail"`` policy, impossible recovery).  In shared
                mode those errors fail only the owning job; backend
                and programming errors still propagate.
        """
        if self._ran:
            raise ConfigurationError("a scheduler can only run once")
        if not self._jobs:
            raise ConfigurationError("no jobs were submitted")
        self._ran = True
        backend = self._backend
        engine = self._engine
        self.started = time.monotonic()
        if engine is not None:
            engine.started = self.started
        for job in self._jobs:
            job.open(backend, self.started)
        if engine is not None:
            only = self._jobs[0]
            engine.collector = only.collector
            engine.telemetry = only.telemetry
            bind_target = engine
        else:
            # A representative config for backend-level knobs (start
            # method, processors for pool sizing); per-job settings are
            # read through job_context() at spawn time.
            self.config = self._jobs[0].spec.config.with_updates(
                time_limit=None, reduction_fanout=None,
                transport="queue")
            bind_target = self
        backend.bind(bind_target)
        epoch = backend.clock()
        for job in self._jobs:
            job.collector.mark_epoch(epoch)
        for job in self._jobs:
            job.status = JobStatus.RUNNING
            if engine is not None:
                job.pending.extend(backend.plan())
            else:
                job.pending.extend(job.initial_plan())
        self._dispatch()
        drain_clock = backend.clock()
        for job in self._jobs:
            job.drain_started = drain_clock
        try:
            self._drain()
        finally:
            backend.shutdown()
        for job in self._jobs:
            if job.telemetry is not None and job.drain_started is not None:
                job.telemetry.tracer.record(
                    "collector.drain", job.drain_started, backend.clock(),
                    messages=job.collector.receive_count)
        backend.finish()
        for job in self._jobs:
            if job.status is JobStatus.FAILED:
                continue
            job.finalize(backend, self.started)
        return list(self._jobs)

    def _drain(self) -> None:
        backend = self._backend
        while True:
            running = [job for job in self._jobs
                       if job.status is JobStatus.RUNNING]
            if not running:
                break
            self._dispatch()
            self._expire_deadlines(running)
            if backend.done:
                # The backend can produce nothing further (e.g. the
                # sequential loop ran out of assignments under a time
                # limit); whatever is incomplete stays incomplete.
                for job in running:
                    if job.status is JobStatus.RUNNING:
                        job.mark_complete(
                            completed=job.collector.complete)
                break
            message = backend.poll(_POLL_SECONDS)
            if message is not None:
                self.ingest(message, backend.clock())
                continue
            now = backend.clock()
            deaths = backend.reap()
            if deaths:
                self._handle_deaths(deaths, now)
            for job in self._jobs:
                if job.status is JobStatus.RUNNING:
                    job.flag_stale(now)

    def _expire_deadlines(self, running: Sequence[Job]) -> None:
        """Cancel undispatched work of jobs past their time limit.

        Dispatched workers honour the same deadline themselves (it is
        passed to ``run_worker``), ship a final pass and complete the
        job; only never-started assignments need dropping here.  The
        classic path keeps its historical backend-side handling
        (``backend.deadline``), so this only acts on shared-mode jobs.
        """
        if self._engine is not None:
            return
        now = self._backend.clock()
        for job in running:
            if job.status is not JobStatus.RUNNING:
                continue
            if job.deadline is None or now < job.deadline:
                continue
            job.pending.clear()
            if not job.in_flight:
                job.mark_complete(completed=job.collector.complete)

    # -- dispatch -------------------------------------------------------

    def _dispatch(self) -> None:
        """Hand free worker slots to pending assignments, fairly.

        Unbounded slots (the classic path) dispatch everything at once
        — a single ``backend.spawn`` with the full plan, exactly like
        the old engine.  Bounded slots run the deficit auction: highest
        deficit wins, each dispatch charges ``1 / priority``.
        """
        contenders = [job for job in self._jobs
                      if job.status is JobStatus.RUNNING and job.pending]
        if not contenders:
            return
        batches: dict[int, list[WorkerAssignment]] = {}

        def headroom(job: Job) -> int | None:
            cap = job.spec.max_workers
            if cap is None:
                return None
            used = len(job.in_flight) + len(batches.get(job.index, ()))
            return cap - used

        if self._workers is None:
            for job in contenders:
                while job.pending:
                    room = headroom(job)
                    if room is not None and room <= 0:
                        break
                    batches.setdefault(job.index, []).append(
                        job.pending.popleft())
        else:
            busy = sum(len(job.in_flight) for job in self._jobs)
            free = self._workers - busy
            while free > 0:
                candidates = [job for job in contenders
                              if job.pending
                              and (headroom(job) is None
                                   or headroom(job) > 0)]
                if not candidates:
                    break
                job = max(candidates,
                          key=lambda j: (j.deficit, -j.index))
                batches.setdefault(job.index, []).append(
                    job.pending.popleft())
                job.deficit -= 1.0 / job.priority
                free -= 1
        for job in contenders:
            batch = batches.get(job.index)
            if batch:
                self._spawn_for(job, batch)

    def _spawn_for(self, job: Job, batch: list[WorkerAssignment]) -> None:
        extras = self._backend.spawn(batch)
        if job.started_wall is None:
            job.started_wall = time.monotonic()
        job.record_spawn(batch, extras)

    # -- fault handling -------------------------------------------------

    def _handle_deaths(self, deaths, now: float) -> None:
        by_job: dict[str | None, list] = {}
        for death in deaths:
            by_job.setdefault(death.job, []).append(death)
        for job_id in sorted(
                by_job,
                key=lambda jid: self._by_id[jid].index
                if jid in self._by_id else -1):
            job = self._by_id.get(job_id)
            if job is None or job.status is not JobStatus.RUNNING:
                continue  # stray deaths of finished jobs
            try:
                job.handle_deaths(by_job[job_id], now, self._spawn_for)
            except BackendError as error:
                if self._engine is not None:
                    raise
                job.fail(error)

    # -- reporting ------------------------------------------------------

    def sla_report(self) -> dict:
        """Scheduler-level SLA summary across all named jobs."""
        jobs = [job.sla_snapshot(self.started) for job in self._jobs
                if job.id is not None]
        missed = sum(1 for record in jobs if record["deadline_missed"])
        return {
            "workers": self._workers,
            "max_jobs": self._max_jobs,
            "jobs": jobs,
            "submitted": len(self._jobs),
            "rejected": self.rejected,
            "deadline_misses": missed,
            "stray_messages": self.stray_messages,
        }
