"""The value returned by a completed run."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.runtime.config import RunConfig
from repro.stats.estimators import Estimates
from repro.stats.statistic import Statistic

__all__ = ["RunResult"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one ``parmonc`` session.

    Attributes:
        estimates: Result matrices for the *merged* sample (including
            resumed sessions); None only for accounting-only simulated
            runs that executed no realizations.
        config: The configuration the session ran with.
        per_rank_volumes: Final sample volume contributed by each worker
            in this session.
        session_volume: Realizations simulated in this session.
        total_volume: Merged sample volume, ``base + session``.
        elapsed: Wall-clock seconds the session took.
        virtual_time: Simulated cluster seconds (``T_comp``) when the
            run used the discrete-event backend, else None.
        sessions: 1 for a fresh simulation, higher when resumed.
        data_dir: Where result files were written (None for in-memory
            runs).
        messages_received: Collector message count (exchange intensity).
        saves_performed: Collector averaging/saving sweeps.
        history: Convergence trace ``(time, volume, eps_max)`` per
            save-point (empty for in-memory runs).
        telemetry: Summary dict of the run's telemetry (realizations,
            messages, bytes, compute vs idle seconds, artifact
            directory); None unless the run enabled telemetry.  The full
            record lives under ``parmonc_data/telemetry/``.
        recovered_ranks: Ranks that died mid-run and had their remaining
            quota reassigned to a replacement worker (empty unless
            ``config.on_worker_death == "reassign"`` kicked in).
        statistics: The extra merged statistics of the run, keyed by
            kind — covariance, histogram, ... as declared via
            ``config.statistics`` (plus any inherited from resumed
            sessions).  Empty for the default moments-only run; the
            moment statistic itself is exposed as :attr:`estimates`.
        sla: Scheduling record when the run was a named job of a
            :class:`~repro.runtime.scheduler.Scheduler` — submit-to-
            start wait, makespan, advisory deadline misses and dispatch
            accounting (see :meth:`repro.runtime.job.Job.sla_snapshot`).
            None for classic single runs.
    """

    estimates: Estimates | None
    config: RunConfig
    per_rank_volumes: dict[int, int] = field(default_factory=dict)
    session_volume: int = 0
    total_volume: int = 0
    elapsed: float = 0.0
    virtual_time: float | None = None
    sessions: int = 1
    data_dir: Path | None = None
    messages_received: int = 0
    saves_performed: int = 0
    history: tuple[tuple[float, int, float], ...] = ()
    telemetry: dict | None = None
    recovered_ranks: tuple[int, ...] = ()
    statistics: dict[str, Statistic] = field(default_factory=dict)
    sla: dict | None = None

    def __str__(self) -> str:
        timing = (f"T_comp={self.virtual_time:.3f}s (virtual)"
                  if self.virtual_time is not None
                  else f"elapsed={self.elapsed:.3f}s")
        error = (f"eps_max={self.estimates.abs_error_max:.4g}"
                 if self.estimates is not None else "accounting-only")
        return (f"RunResult(L={self.total_volume}, "
                f"M={self.config.processors}, {timing}, {error})")

    def summary(self) -> str:
        """A multi-line human summary of the session."""
        lines = [str(self)]
        if self.sessions > 1:
            lines.append(f"session {self.sessions} (resumed); this "
                         f"session added {self.session_volume} "
                         f"realizations")
        if self.estimates is not None:
            lines.append(
                f"errors: eps_max={self.estimates.abs_error_max:.6g}, "
                f"rho_max={self.estimates.rel_error_max:.4g}%, "
                f"sigma2_max={self.estimates.variance_max:.6g}")
            if self.estimates.mean_time > 0:
                lines.append(f"mean time per realization: "
                             f"{self.estimates.mean_time:.3e} s")
        lines.append(f"collector: {self.messages_received} messages, "
                     f"{self.saves_performed} save sweeps")
        if self.statistics:
            lines.append("extra statistics: " + ", ".join(
                f"{kind} (L={statistic.volume})" for kind, statistic
                in sorted(self.statistics.items())))
        if self.data_dir is not None:
            lines.append(f"results under {self.data_dir}")
        return "\n".join(lines)
