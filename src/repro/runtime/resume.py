"""Resumption semantics (§3.2): ``res=1`` with automatic averaging.

A resumed session loads the merged save-point of the previous one and
treats it as an extra "processor" in formula (5).  Three rules are
enforced here:

* resuming requires a previous simulation to exist,
* the new session's ``seqnum`` must differ from every earlier session's
  — including the sessions of a *superseded* sample (a ``res=0`` run
  carries the burnt-``seqnum`` history forward) — otherwise the new
  realizations would re-consume the same "experiments" subsequence and
  correlate with the old sample, and
* the RNG leap parameters must match the previous sessions': a session
  resumed with a different subsequence hierarchy would silently place
  its "fresh" streams on top of already-consumed ones.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.exceptions import ResumeError, SupersededSampleWarning
from repro.runtime.config import RunConfig
from repro.runtime.files import DataDirectory, genparam_fingerprint
from repro.stats.accumulator import MomentSnapshot
from repro.stats.statistic import Statistic

__all__ = ["ResumeState", "build_manifest", "prepare_resume",
           "finalize_session"]


def build_manifest(config: RunConfig) -> dict:
    """The session manifest stored inside the merged save-point.

    Records everything a later session needs to decide whether it is
    statistically compatible with this one: the matrix shape, the
    processor count, the RNG leap exponents, and a fingerprint of
    ``parmonc_genparam.dat`` (when present in the working directory).
    """
    leaps = config.leaps
    return {
        "shape": list(config.shape),
        "processors": int(config.processors),
        "leaps": {
            "ne_exponent": leaps.experiment_exponent,
            "np_exponent": leaps.processor_exponent,
            "nr_exponent": leaps.realization_exponent,
        },
        "genparam_sha256": genparam_fingerprint(config.workdir),
    }


@dataclass(frozen=True)
class ResumeState:
    """What a session starts from.

    Attributes:
        base: Moments inherited from previous sessions (zero for a new
            simulation).
        used_seqnums: Every ``seqnum`` consumed so far, including the
            current session's and those of superseded samples.
        session_index: 1 for a fresh simulation, previous count + 1 when
            resuming.
        manifest: The current session's manifest, persisted with the
            save-point at finalize time.
        base_statistics: Extra statistics inherited from previous
            sessions, keyed by kind (empty for a new simulation) —
            they merge under the new session's extras exactly like
            ``base`` merges under the moments.
        unknown_payloads: Raw statistic payloads of unregistered kinds
            found in the loaded save-point; carried forward verbatim
            at finalize time so resuming never destroys them.
    """

    base: MomentSnapshot
    used_seqnums: tuple[int, ...]
    session_index: int
    manifest: dict | None = field(default=None)
    base_statistics: dict[str, Statistic] = field(default_factory=dict)
    unknown_payloads: dict[str, dict] = field(default_factory=dict)


def _previous_seqnums(data: DataDirectory) -> tuple[int, ...]:
    """Burnt seqnums of an existing save-point, () when unreadable.

    Used on ``res=0`` over a workdir that already holds a sample: the
    old realizations are discarded, but the experiments subsequences
    they consumed stay burnt — a later ``res=1`` session reusing one
    would correlate with whatever of the old sample survives (result
    files, ``manaver``-recoverable subtotals).
    """
    if not data.has_savepoint():
        return ()
    try:
        _snapshot, meta = data.load_savepoint()
    except ResumeError:
        # Corrupt (now quarantined) or unreadably new: the history is
        # gone; the experiment registry still covers manaver.
        return ()
    return tuple(meta.used_seqnums)


def prepare_resume(config: RunConfig, data: DataDirectory, *,
                   carry_history: bool = True) -> ResumeState:
    """Validate the resumption flag and load the inherited moments.

    Args:
        config: The run configuration (``res`` and ``seqnum`` matter).
        data: The run's data directory.
        carry_history: On ``res=0`` over an existing save-point, inherit
            its burnt ``seqnum`` history (and warn that the old sample
            is being superseded).  In-memory sessions pass False — they
            discard nothing and never persist a save-point.

    Raises:
        ResumeError: When ``res=1`` without a previous simulation, when
            the stored shape differs from the configured one, when
            ``seqnum`` repeats an earlier session's, or when the RNG
            leap parameters differ from the previous sessions'.
    """
    manifest = build_manifest(config)
    if config.res == 0:
        inherited = _previous_seqnums(data) if carry_history else ()
        if inherited:
            warnings.warn(
                f"res=0 supersedes the existing sample under {data.root}; "
                f"its realizations are discarded but seqnums "
                f"{sorted(set(inherited))} stay burnt for later res=1 "
                f"sessions", SupersededSampleWarning, stacklevel=2)
        used = tuple(sorted(set(inherited) | {config.seqnum}))
        return ResumeState(
            base=MomentSnapshot.zero(config.nrow, config.ncol),
            used_seqnums=used,
            session_index=1,
            manifest=manifest)
    snapshot, meta = data.load_savepoint()
    if tuple(meta.shape) != config.shape:
        raise ResumeError(
            f"previous simulation used matrix shape {tuple(meta.shape)}, "
            f"cannot resume with shape {config.shape}")
    if config.seqnum in meta.used_seqnums:
        raise ResumeError(
            f"seqnum {config.seqnum} was already used by a previous "
            f"session (used: {sorted(meta.used_seqnums)}); choose a fresh "
            f"experiments subsequence")
    stored_leaps = (meta.manifest or {}).get("leaps")
    if stored_leaps is not None and stored_leaps != manifest["leaps"]:
        raise ResumeError(
            f"previous sessions used RNG leap parameters {stored_leaps}, "
            f"cannot resume with {manifest['leaps']}: the substreams of "
            f"the new session would overlap the consumed ones and "
            f"correlate the samples (check parmonc_genparam.dat)")
    return ResumeState(
        base=snapshot,
        used_seqnums=tuple(meta.used_seqnums) + (config.seqnum,),
        session_index=meta.sessions + 1,
        manifest=manifest,
        base_statistics=dict(meta.statistics),
        unknown_payloads=dict(meta.unknown_payloads))


def finalize_session(data: DataDirectory, state: ResumeState,
                     merged: MomentSnapshot,
                     statistics: dict[str, Statistic] | None = None
                     ) -> None:
    """Persist the merged result as the save-point for future sessions.

    ``statistics`` is the session's merged extra-statistic map (the
    collector's :meth:`~repro.runtime.collector.Collector
    .merged_statistics`); unknown-kind payloads inherited from the
    previous save-point are rewritten verbatim beside them.
    """
    if merged.shape != state.base.shape:
        raise ResumeError(
            f"merged snapshot shape {merged.shape} does not match the "
            f"session base shape {state.base.shape}")
    data.save_savepoint(merged, used_seqnums=state.used_seqnums,
                        sessions=state.session_index,
                        manifest=state.manifest,
                        statistics=statistics,
                        extra_payloads=state.unknown_payloads)
