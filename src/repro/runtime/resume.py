"""Resumption semantics (§3.2): ``res=1`` with automatic averaging.

A resumed session loads the merged save-point of the previous one and
treats it as an extra "processor" in formula (5).  Two rules from the
paper are enforced here:

* resuming requires a previous simulation to exist, and
* the new session's ``seqnum`` must differ from every earlier session's,
  otherwise the new realizations would re-consume the same "experiments"
  subsequence and correlate with the old sample.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ResumeError
from repro.runtime.config import RunConfig
from repro.runtime.files import DataDirectory
from repro.stats.accumulator import MomentSnapshot

__all__ = ["ResumeState", "prepare_resume", "finalize_session"]


@dataclass(frozen=True)
class ResumeState:
    """What a session starts from.

    Attributes:
        base: Moments inherited from previous sessions (zero for a new
            simulation).
        used_seqnums: Every ``seqnum`` consumed so far, including the
            current session's.
        session_index: 1 for a fresh simulation, previous count + 1 when
            resuming.
    """

    base: MomentSnapshot
    used_seqnums: tuple[int, ...]
    session_index: int


def prepare_resume(config: RunConfig, data: DataDirectory) -> ResumeState:
    """Validate the resumption flag and load the inherited moments.

    Args:
        config: The run configuration (``res`` and ``seqnum`` matter).
        data: The run's data directory.

    Raises:
        ResumeError: When ``res=1`` without a previous simulation, when
            the stored shape differs from the configured one, or when
            ``seqnum`` repeats an earlier session's.
    """
    if config.res == 0:
        return ResumeState(
            base=MomentSnapshot.zero(config.nrow, config.ncol),
            used_seqnums=(config.seqnum,),
            session_index=1)
    snapshot, meta = data.load_savepoint()
    if tuple(meta.shape) != config.shape:
        raise ResumeError(
            f"previous simulation used matrix shape {tuple(meta.shape)}, "
            f"cannot resume with shape {config.shape}")
    if config.seqnum in meta.used_seqnums:
        raise ResumeError(
            f"seqnum {config.seqnum} was already used by a previous "
            f"session (used: {sorted(meta.used_seqnums)}); choose a fresh "
            f"experiments subsequence")
    return ResumeState(
        base=snapshot,
        used_seqnums=tuple(meta.used_seqnums) + (config.seqnum,),
        session_index=meta.sessions + 1)


def finalize_session(data: DataDirectory, state: ResumeState,
                     merged: MomentSnapshot) -> None:
    """Persist the merged result as the save-point for future sessions."""
    if merged.shape != state.base.shape:
        raise ResumeError(
            f"merged snapshot shape {merged.shape} does not match the "
            f"session base shape {state.base.shape}")
    data.save_savepoint(merged, used_seqnums=state.used_seqnums,
                        sessions=state.session_index)
