"""The PARMONC runtime: configuration, backends, files and resumption."""

from __future__ import annotations

from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig, minutes
from repro.runtime.files import DataDirectory
from repro.runtime.messages import MomentMessage, message_bytes
from repro.runtime.multiprocess import run_multiprocess
from repro.runtime.result import RunResult
from repro.runtime.resume import ResumeState, finalize_session, prepare_resume
from repro.runtime.sequential import run_sequential
from repro.runtime.worker import (
    BatchRealizationRoutine,
    adapt_realization,
    batch_routine,
    make_batched,
    run_worker,
)

__all__ = [
    "RunConfig",
    "minutes",
    "RunResult",
    "Collector",
    "DataDirectory",
    "MomentMessage",
    "message_bytes",
    "ResumeState",
    "prepare_resume",
    "finalize_session",
    "adapt_realization",
    "BatchRealizationRoutine",
    "batch_routine",
    "make_batched",
    "run_worker",
    "run_sequential",
    "run_multiprocess",
    "run_simcluster",
]


def __getattr__(name: str):
    # run_simcluster is imported lazily: it needs repro.cluster, which in
    # turn uses this package's submodules — an eager import here would
    # close an import cycle.
    if name == "run_simcluster":
        from repro.runtime.simcluster import run_simcluster
        return run_simcluster
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
