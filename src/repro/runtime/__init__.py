"""The PARMONC runtime: configuration, engine, backends, resumption.

Backends register themselves with the engine's registry
(:func:`~repro.runtime.engine.register_backend`); importing this package
registers the two eager backends (``sequential``, ``multiprocess``) and
declares ``simcluster`` and ``distributed`` lazily — the former pulls in
the discrete-event cluster simulation, the latter the TCP wire layer,
and nobody should pay for either on plain runs.
"""

from __future__ import annotations

from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig, minutes
from repro.runtime.engine import (
    Backend,
    Engine,
    EngineBackend,
    WorkerAssignment,
    WorkerDeath,
    available_backends,
    create_backend,
    register_backend,
    register_lazy_backend,
)
from repro.runtime.files import DataDirectory, ProcessorSubtotal
from repro.runtime.job import Job, JobSpec, JobStatus
from repro.runtime.messages import MomentMessage, message_bytes
from repro.runtime.scheduler import Scheduler

# Backend modules register themselves; sequential first so the registry
# (and therefore ``BACKENDS`` / the CLI choices) keeps its historical
# order: sequential, multiprocess, simcluster, distributed.
from repro.runtime.sequential import SequentialBackend, run_sequential
from repro.runtime.multiprocess import MultiprocessBackend, run_multiprocess
from repro.runtime.result import RunResult
from repro.runtime.resume import ResumeState, finalize_session, prepare_resume
from repro.runtime.worker import (
    BatchRealizationRoutine,
    adapt_realization,
    batch_routine,
    make_batched,
    run_worker,
)

register_lazy_backend("simcluster", "repro.runtime.simcluster")
register_lazy_backend("distributed", "repro.runtime.distributed")

__all__ = [
    "RunConfig",
    "minutes",
    "RunResult",
    "Collector",
    "DataDirectory",
    "ProcessorSubtotal",
    "MomentMessage",
    "message_bytes",
    "ResumeState",
    "prepare_resume",
    "finalize_session",
    "adapt_realization",
    "BatchRealizationRoutine",
    "batch_routine",
    "make_batched",
    "run_worker",
    "Backend",
    "Engine",
    "EngineBackend",
    "Job",
    "JobSpec",
    "JobStatus",
    "Scheduler",
    "WorkerAssignment",
    "WorkerDeath",
    "available_backends",
    "create_backend",
    "register_backend",
    "register_lazy_backend",
    "SequentialBackend",
    "MultiprocessBackend",
    "run_sequential",
    "run_multiprocess",
]
