"""Distributed backend: quota dispatched to TCP worker pools.

The run side of the distributed deployment.  Where the multiprocess
backend forks workers locally, this backend connects to one or more
``parmonc-pool`` daemons (:mod:`repro.runtime.pool`) and dispatches the
work plan over the wire protocol of :mod:`repro.runtime.wire`.  From the
:class:`~repro.runtime.engine.Engine`'s point of view it is just another
:class:`~repro.runtime.engine.Backend` — same ``spawn/poll/reap``
contract, same collector, bit-identical estimates — which is the
ParaMonte-style promise: serial, multicore and multi-node runs share one
user-facing API.

Elasticity falls out of two existing mechanisms:

* **late joiners** — every configured address is retried in the
  background, so a pool that comes up mid-run starts a session and
  immediately receives whatever assignments are still pending
  (including recovery assignments for other pools' dead workers);
* **departures** — a worker crash surfaces as an EXIT frame with a
  nonzero code, and a vanished pool (socket close, missed heartbeats,
  ``kill -9`` of the daemon) marks all its unfinished ranks dead.  Both
  route through the engine's ``on_worker_death`` policy, so with
  ``"reassign"`` the undelivered quota is reissued on fresh
  subsequences — possibly to a different pool.

All socket work happens on an asyncio loop in a private daemon thread;
the engine-facing methods communicate with it through thread-safe
queues, and dead-worker verdicts reuse the engine's shared
:class:`~repro.runtime.engine.DrainBuffer` drain-before-verdict helper
and ``config.death_grace`` window, so the semantics cannot diverge from
the multiprocess backend's.
"""

from __future__ import annotations

import asyncio
import logging
import queue as queue_module
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import BackendError, ConfigurationError, WireError
from repro.runtime.engine import (
    DrainBuffer,
    EngineBackend,
    WorkerDeath,
    register_backend,
)
from repro.runtime.messages import MomentMessage
from repro.runtime.wire import (
    FrameKind,
    config_to_payload,
    message_from_payload,
    read_frame,
    routine_to_payload,
    write_frame,
)

__all__ = ["DistributedBackend", "parse_connect"]

_logger = logging.getLogger(__name__)


def parse_connect(connect) -> tuple[tuple[str, int], ...]:
    """Normalize ``--connect`` input to ``((host, port), ...)``.

    Accepts a comma-separated string (``"host:9737,other:9737"``), an
    iterable of such strings, or an iterable of ``(host, port)`` pairs.
    """
    if connect is None:
        raise ConfigurationError(
            "the distributed backend needs at least one parmonc-pool "
            "address; pass connect='host:port[,host:port...]'")
    if isinstance(connect, str):
        items = [part.strip() for part in connect.split(",")]
    else:
        items = list(connect)
    addresses: list[tuple[str, int]] = []
    for item in items:
        if isinstance(item, str):
            if not item:
                continue
            host, _, port = item.rpartition(":")
            if not host:
                raise ConfigurationError(
                    f"pool address {item!r} is not host:port")
            try:
                addresses.append((host, int(port)))
            except ValueError:
                raise ConfigurationError(
                    f"pool address {item!r} has a non-numeric port"
                ) from None
        else:
            host, port = item
            addresses.append((str(host), int(port)))
    if not addresses:
        raise ConfigurationError(
            "the distributed backend needs at least one parmonc-pool "
            "address")
    return tuple(dict.fromkeys(addresses))


@dataclass
class _PoolLink:
    """One live pool connection (asyncio-thread state only).

    ``active`` holds ``(job, rank)`` keys — ``job`` is None on the
    classic single-run path — so two jobs of one scheduler can both
    run a rank 0 on the same pool without colliding.
    """

    address: tuple[str, int]
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    capacity: int = 1
    label: str = ""
    active: set = field(default_factory=set)
    #: Job ids this pool already has context for — seeded from the
    #: HELLO snapshot, extended by SUBMIT frames (streaming mode).
    announced: set = field(default_factory=set)


def _sorted_keys(keys) -> list[tuple[str | None, int]]:
    """``(job, rank)`` keys in a stable order (None jobs first)."""
    return sorted(keys, key=lambda key: (key[0] is not None,
                                         key[0] or "", key[1]))


@dataclass(frozen=True)
class _ExitRecord:
    """An EXIT frame or a lost connection, queued for the reap thread."""

    rank: int
    exitcode: int | None
    detail: str
    lost: bool = False
    job: str | None = None


@register_backend("distributed")
class DistributedBackend(EngineBackend):
    """Dispatch quota to remote ``parmonc-pool`` worker daemons.

    Args:
        connect: Pool address(es) — ``"host:port"``, a comma-separated
            list, or an iterable of addresses.  Unreachable pools are
            retried in the background, so an address may name a pool
            that only comes up mid-run.
        routine_spec: Optional ``module:function`` string shipped
            instead of a pickle, letting pools import the routine by
            name (the ``parmonc-run`` path).
        heartbeat_interval: Seconds between run-side heartbeats.
        heartbeat_timeout: Seconds of pool silence before its
            connection is declared lost (pools heartbeat every second
            by default, so this tolerates several missed beats).
        connect_timeout: Seconds the run tolerates having *no* pool
            connected while work is outstanding before failing.
        retry_interval: Seconds between reconnection attempts.
    """

    name = "distributed"
    monitors_staleness = True
    supports_shared_jobs = True

    def __init__(self, connect=None, routine_spec: str | None = None,
                 heartbeat_interval: float = 1.0,
                 heartbeat_timeout: float = 10.0,
                 connect_timeout: float = 30.0,
                 retry_interval: float = 0.5) -> None:
        super().__init__()
        self._addresses = parse_connect(connect)
        self._routine_spec = routine_spec
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._connect_timeout = connect_timeout
        self._retry_interval = retry_interval
        # Engine-thread <- network-thread channels.
        self._inbox: queue_module.Queue = queue_module.Queue()
        self._exits: queue_module.Queue = queue_module.Queue()
        self._notices: queue_module.Queue = queue_module.Queue()
        self._drainbuf = DrainBuffer(self._inbox.get_nowait)
        # Suspect timers keyed ``(job, rank)``; job is None on the
        # classic single-run path.
        self._suspects: dict[tuple[str | None, int], float] = {}
        self._exit_backlog: list[_ExitRecord] = []
        # Engine-thread -> network-thread work queue.
        self._pending: deque = deque()
        # Network-thread state.
        self._links: dict[tuple[str, int], _PoolLink] = {}
        self._hello: dict | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._loop_ready = threading.Event()
        self._dispatch_event: asyncio.Event | None = None
        self._stop_event: asyncio.Event | None = None
        # Crude cross-thread mirrors for the no-pool guard (single
        # writer each; reads tolerate slight staleness).
        self._connected_pools = 0
        self._last_pool_seen = time.monotonic()

    # -- Backend protocol --------------------------------------------------

    def bind(self, engine) -> None:
        super().bind(engine)
        if self.routine is not None:
            # Classic single-run path: the historical HELLO shape.
            self._hello = {
                "config": config_to_payload(self.config),
                "routine": routine_to_payload(self.routine,
                                              spec=self._routine_spec),
            }
            batch_size = getattr(self.routine, "batch_size", None)
            if self._routine_spec is not None and batch_size is not None:
                # The spec names the *scalar* routine; the pool re-wraps
                # it with make_batched so the batched fast path still
                # runs.
                self._hello["batch_size"] = batch_size
        else:
            # Shared scheduler mode: ship every job's context up front,
            # so a pool that joins mid-run (or late) can start a worker
            # for any job straight from the handshake.  Routines travel
            # as pickles — a per-job ``module:function`` spec has no CLI
            # path yet.
            self._hello = {
                "jobs": {
                    job.id: {
                        "config": config_to_payload(job.config),
                        "routine": routine_to_payload(job.routine),
                    }
                    for job in engine.jobs
                },
            }
            if getattr(engine, "streaming", False):
                # Live admission: the handshake may carry no jobs at
                # all; later admissions reach connected pools as
                # SUBMIT frames and late-joining pools through the
                # (mutated) HELLO snapshot.
                self._hello["streaming"] = True
        self._last_pool_seen = time.monotonic()
        self._thread = threading.Thread(
            target=self._network_main, daemon=True,
            name="parmonc-distributed")
        self._thread.start()
        if not self._loop_ready.wait(timeout=10.0):
            raise BackendError(
                "the distributed backend's network thread failed to start")

    def spawn(self, assignments) -> None:
        for assignment in assignments:
            if assignment.quota is None:
                raise BackendError(
                    "the distributed backend needs a static quota per "
                    "assignment")
            self._pending.append(assignment)
        self._wake_dispatcher()
        return None

    def poll(self, timeout: float) -> MomentMessage | None:
        self._flush_notices()
        message = self._drainbuf.pop()
        if message is not None:
            return message
        try:
            return self._inbox.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def reap(self) -> list[WorkerDeath]:
        """Judge exits and lost pools — after draining queued frames.

        Pools send a worker's EXIT frame only after flushing its queued
        data (and TCP preserves that order), so draining the inbox
        first guarantees every delivered message reaches the collector
        before its sender can be declared dead.  Verdicts then mirror
        the multiprocess backend: nonzero exit codes are dead on sight,
        a clean exit without a final message gets ``config.death_grace``
        seconds, and a lost pool kills all its unfinished ranks.
        """
        self._flush_notices()
        if self._drainbuf.drain():
            # Let the engine ingest the buffered messages first; death
            # verdicts resume on the next empty poll.
            return []
        now = self.clock()
        while True:
            try:
                self._exit_backlog.append(self._exits.get_nowait())
            except queue_module.Empty:
                break
        dead: list[WorkerDeath] = []
        waiting: list[_ExitRecord] = []
        for record in self._exit_backlog:
            context = self._job_context(record.job)
            key = (record.job, record.rank)
            if record.rank in context.collector.final_ranks:
                self._suspects.pop(key, None)
                continue  # finished before exiting: a normal completion
            if record.lost or record.exitcode:
                dead.append(WorkerDeath(record.rank, record.exitcode,
                                        detail=record.detail,
                                        job=record.job))
            else:
                first_seen = self._suspects.setdefault(key, now)
                if now - first_seen >= context.config.death_grace:
                    dead.append(WorkerDeath(record.rank, record.exitcode,
                                            detail=record.detail,
                                            job=record.job))
                else:
                    waiting.append(record)
        self._exit_backlog = waiting
        for death in dead:
            self._suspects.pop((death.job, death.rank), None)
        if not dead:
            self._check_pool_starvation()
        return dead

    def shutdown(self) -> None:
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._flush_notices()
        self._done = True

    def announce_job(self, job) -> None:
        """Publish a newly admitted job's context to the pools.

        Called by the scheduler (engine thread) right after admission.
        The entry lands in the HELLO jobs map on the network thread —
        every mutation of that map happens on the loop, so handshakes
        always serialize a consistent snapshot — and the dispatcher
        sends a SUBMIT frame to each already-connected pool before
        that pool's first ASSIGN of this job.
        """
        entry = {
            "config": config_to_payload(job.config),
            "routine": routine_to_payload(job.routine),
        }
        loop = self._loop

        def apply() -> None:
            self._hello["jobs"][job.id] = entry
            if self._dispatch_event is not None:
                self._dispatch_event.set()

        if loop is None:
            apply()
            return
        try:
            loop.call_soon_threadsafe(apply)
        except RuntimeError:
            apply()

    def cancel_job(self, job: str | None) -> None:
        """Tell every connected pool to drop the job's workers.

        The run side's queued assignments for the job are purged on
        the loop thread *before* the CANCEL frames go out, so no
        ASSIGN of the cancelled job can be sent after its CANCEL on
        any one link (TCP preserves the per-link order; the pool
        drops stragglers anyway).
        """
        if job is None:
            return
        loop = self._loop

        def purge_and_send() -> None:
            # Rotate the deque in place: concurrent appends from the
            # engine thread land at the tail and survive the sweep.
            for _ in range(len(self._pending)):
                assignment = self._pending.popleft()
                if assignment.job != job:
                    self._pending.append(assignment)
            for link in self._links.values():
                try:
                    write_frame(link.writer, FrameKind.CANCEL,
                                {"job": job})
                except (ConnectionError, RuntimeError):
                    continue

        if loop is None:
            purge_and_send()
            return
        try:
            loop.call_soon_threadsafe(purge_and_send)
        except RuntimeError:
            pass

    # -- engine-thread helpers ---------------------------------------------

    def _job_context(self, job: str | None):
        """Per-job context (config/collector/deadline), self for legacy.

        Mirrors the multiprocess backend: an assignment, exit or
        message tagged with a job id resolves its routine, config and
        collector through the scheduler; untagged (classic single-run)
        traffic keeps using the engine-wide context bound on this
        backend.
        """
        if job is None or self.engine is None:
            return self
        return self.engine.job_context(job)

    def _all_work_complete(self) -> bool:
        """Every lane of every job has delivered its final message."""
        engine = self.engine
        if engine is not None:
            complete = getattr(engine, "all_complete", None)
            if complete is not None:
                return complete
        return self.collector.complete

    def _flush_notices(self) -> None:
        """Replay network-thread observability into run telemetry.

        The :class:`~repro.obs.events.EventLog` is not thread-safe, so
        the network thread only queues notices; they land in telemetry
        here, on the engine thread, during poll/reap.
        """
        telemetry = self.engine.telemetry if self.engine is not None \
            else None
        while True:
            try:
                item = self._notices.get_nowait()
            except queue_module.Empty:
                return
            if telemetry is None:
                continue
            if item[0] == "gauge":
                telemetry.registry.gauge("pool.workers").set(item[1])
            else:
                _, name, fields = item
                telemetry.events.append(name, ts=self.clock(), **fields)

    def _check_pool_starvation(self) -> None:
        if self._connected_pools > 0:
            return
        outstanding = bool(self._pending) or bool(self._exit_backlog) \
            or not self._all_work_complete()
        if not outstanding:
            return
        silent = time.monotonic() - self._last_pool_seen
        if silent > self._connect_timeout:
            addresses = ", ".join("%s:%d" % addr
                                  for addr in self._addresses)
            raise BackendError(
                f"no parmonc-pool reachable at [{addresses}] for "
                f"{silent:.1f}s with work outstanding (connect_timeout="
                f"{self._connect_timeout}s); are the pools running?")

    def _wake_dispatcher(self) -> None:
        loop, event = self._loop, self._dispatch_event
        if loop is None or event is None:
            return
        try:
            loop.call_soon_threadsafe(event.set)
        except RuntimeError:
            pass

    def _notice(self, name: str, **fields) -> None:
        self._notices.put(("event", name, fields))
        self._notices.put(
            ("gauge", sum(link.capacity for link in self._links.values())))

    # -- network thread ----------------------------------------------------

    def _network_main(self) -> None:
        try:
            asyncio.run(self._network())
        except Exception:
            _logger.exception("distributed network thread crashed")
            self._loop_ready.set()

    async def _network(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._dispatch_event = asyncio.Event()
        self._stop_event = asyncio.Event()
        self._loop_ready.set()
        tasks = [self._loop.create_task(self._maintain(address))
                 for address in self._addresses]
        tasks.append(self._loop.create_task(self._dispatch()))
        await self._stop_event.wait()
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        for link in list(self._links.values()):
            try:
                write_frame(link.writer, FrameKind.BYE, {})
                await link.writer.drain()
            except (ConnectionError, RuntimeError):
                pass
            link.writer.close()
        self._links.clear()
        self._connected_pools = 0

    async def _maintain(self, address: tuple[str, int]) -> None:
        """Keep one pool address connected; retry forever in background."""
        host, port = address
        connected_before = False
        while not self._stop_event.is_set():
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(self._retry_interval)
                continue
            link = _PoolLink(address, reader, writer)
            try:
                await self._handshake(link)
            except (WireError, ConnectionError, OSError,
                    asyncio.IncompleteReadError, asyncio.TimeoutError) as exc:
                _logger.warning("pool %s:%d rejected the handshake: %s",
                                host, port, exc)
                writer.close()
                await asyncio.sleep(self._retry_interval)
                continue
            self._links[address] = link
            self._connected_pools = len(self._links)
            self._last_pool_seen = time.monotonic()
            self._notice(
                "pool_reconnected" if connected_before else "pool_connected",
                pool=link.label, workers=link.capacity)
            connected_before = True
            self._dispatch_event.set()
            heartbeats = self._loop.create_task(self._send_heartbeats(link))
            try:
                await self._read_loop(link)
            except (WireError, ConnectionError,
                    asyncio.IncompleteReadError) as exc:
                _logger.warning("pool %s lost: %s", link.label, exc)
            except asyncio.TimeoutError:
                _logger.warning("pool %s silent for %.1fs, dropping it",
                                link.label, self._heartbeat_timeout)
            finally:
                heartbeats.cancel()
                self._links.pop(address, None)
                self._connected_pools = len(self._links)
                self._abandon(link)
                writer.close()
            await asyncio.sleep(self._retry_interval)

    async def _handshake(self, link: _PoolLink) -> None:
        payload = dict(self._hello)
        if self.deadline is not None:
            payload["time_limit"] = max(
                self.deadline - time.monotonic(), 0.0)
        write_frame(link.writer, FrameKind.HELLO, payload)
        # Snapshot before the first await: the jobs map is mutated
        # only on this loop, so this matches what was just serialized.
        link.announced = set(payload.get("jobs") or ())
        await link.writer.drain()
        kind, welcome = await asyncio.wait_for(
            read_frame(link.reader), timeout=self._heartbeat_timeout)
        if kind is FrameKind.ERROR:
            raise WireError(welcome.get("detail", "pool refused the run"))
        if kind is not FrameKind.WELCOME:
            raise WireError(f"expected WELCOME, pool sent {kind.name}")
        link.capacity = max(int(welcome.get("workers", 1)), 1)
        link.label = str(welcome.get("pool")
                         or "%s:%d" % link.address)

    async def _read_loop(self, link: _PoolLink) -> None:
        while True:
            kind, payload = await asyncio.wait_for(
                read_frame(link.reader), timeout=self._heartbeat_timeout)
            self._last_pool_seen = time.monotonic()
            if kind is FrameKind.DATA:
                self._inbox.put(message_from_payload(payload))
            elif kind is FrameKind.EXIT:
                rank = int(payload["rank"])
                job = payload.get("job")
                job = None if job is None else str(job)
                link.active.discard((job, rank))
                self._exits.put(_ExitRecord(
                    rank=rank, exitcode=payload.get("exitcode"),
                    detail=f"on pool {link.label}", job=job))
                self._dispatch_event.set()
            elif kind is FrameKind.HEARTBEAT:
                continue
            elif kind is FrameKind.ERROR:
                raise WireError(payload.get("detail", "pool error"))
            else:
                raise WireError(
                    f"unexpected {kind.name} frame from pool {link.label}")

    async def _send_heartbeats(self, link: _PoolLink) -> None:
        while True:
            await asyncio.sleep(self._heartbeat_interval)
            try:
                write_frame(link.writer, FrameKind.HEARTBEAT, {})
                await link.writer.drain()
            except (ConnectionError, RuntimeError):
                return

    async def _dispatch(self) -> None:
        """Feed pending assignments to pools with free worker slots."""
        while True:
            await self._dispatch_event.wait()
            self._dispatch_event.clear()
            while self._pending:
                link = self._pick_pool()
                if link is None:
                    break  # every slot busy; an EXIT will wake us
                assignment = self._pending.popleft()
                job = assignment.job
                if job is not None and self._hello.get("streaming") \
                        and job not in link.announced:
                    # Streaming admission: ship the job's context
                    # ahead of its first ASSIGN on this link.
                    entry = self._hello["jobs"].get(job)
                    if entry is None:
                        # The announce callback has not landed yet;
                        # requeue and retry shortly.
                        self._pending.appendleft(assignment)
                        self._loop.call_later(
                            0.05, self._dispatch_event.set)
                        break
                    try:
                        write_frame(link.writer, FrameKind.SUBMIT,
                                    dict(entry, job=job))
                        await link.writer.drain()
                    except (ConnectionError, RuntimeError):
                        self._pending.appendleft(assignment)
                        break
                    link.announced.add(job)
                payload = {"rank": assignment.rank,
                           "quota": assignment.quota}
                if assignment.job is not None:
                    payload["job"] = assignment.job
                deadline = self._job_context(assignment.job).deadline
                if deadline is not None:
                    payload["deadline_in"] = max(
                        deadline - time.monotonic(), 0.0)
                key = (assignment.job, assignment.rank)
                link.active.add(key)
                try:
                    write_frame(link.writer, FrameKind.ASSIGN, payload)
                    await link.writer.drain()
                except (ConnectionError, RuntimeError):
                    link.active.discard(key)
                    self._pending.appendleft(assignment)
                    break

    def _pick_pool(self) -> _PoolLink | None:
        """The least-loaded connected pool with a free slot, if any."""
        best: _PoolLink | None = None
        best_load = 1.0
        for link in self._links.values():
            load = len(link.active) / link.capacity
            if load < 1.0 and (best is None or load < best_load):
                best, best_load = link, load
        return best

    def _abandon(self, link: _PoolLink) -> None:
        """A pool vanished: mark its unfinished ranks dead, requeue none.

        The collector may already hold final messages for some of these
        ranks; :meth:`reap` checks ``final_ranks`` before judging, so
        completed workers are not re-killed.
        """
        if self._stop_event.is_set():
            return
        for job, rank in _sorted_keys(link.active):
            self._exits.put(_ExitRecord(
                rank=rank, exitcode=None,
                detail=f"pool {link.label} connection lost", lost=True,
                job=job))
        link.active.clear()
        self._notice("pool_disconnected", pool=link.label)
