"""The unified engine: one session lifecycle, pluggable backends.

Every PARMONC run follows the same master-worker script — resume the
previous session, dispatch a work plan to ``M`` workers, drain moment
messages into the collector, average and save periodically, finalize —
and only the *execution strategy* differs between running workers
inline, as OS processes, or inside the discrete-event cluster
simulation.  This module separates the two concerns:

* :class:`Engine` owns the classic single-run entry point.  The
  lifecycle itself now lives one layer down — per-run state in
  :class:`~repro.runtime.job.Job`, the drain loop in
  :class:`~repro.runtime.scheduler.Scheduler` — and the engine submits
  one anonymous job, reproducing the historical behaviour bit for bit.
  Collector wiring, telemetry, resume semantics, save-points and
  result assembly still exist exactly once, instead of being
  re-implemented per backend.
* :class:`Backend` is the strategy protocol — ``spawn(plan)`` /
  ``poll(timeout)`` / ``reap()`` / ``shutdown()`` — implemented by
  :class:`~repro.runtime.sequential.SequentialBackend`,
  :class:`~repro.runtime.multiprocess.MultiprocessBackend` and
  :class:`~repro.runtime.simcluster.SimclusterBackend`.
* The **registry** (:func:`register_backend`) is the single source of
  backend names: ``parmonc()`` and ``parmonc-run`` both resolve names
  through it, and new backends plug in without touching the core.

On top of the unified lifecycle the engine adds **fault-tolerant quota
reassignment**.  When a backend reports a dead worker
(:meth:`Backend.reap`) and the run's
:attr:`~repro.runtime.config.RunConfig.on_worker_death` policy is
``"reassign"``, the engine keeps the dead worker's moments at its last
collected watermark, retires its rank, and reissues the undelivered
remainder of its quota to a replacement worker on a *fresh* processor
subsequence of the RNG hierarchy (an index beyond ``M``), so the
recovered estimate stays uncorrelated with everything the dead worker
consumed.  The default policy, ``"fail"``, preserves each backend's
historical behaviour (the multiprocess backend raises
:class:`~repro.exceptions.BackendError`; the simulated cluster loses
the tail of the failed node's work, as §2.2 models).
"""

from __future__ import annotations

import importlib
import inspect
import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.exceptions import ConfigurationError
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.messages import CombinedMessage, MomentMessage
from repro.runtime.result import RunResult

__all__ = [
    "Backend",
    "DrainBuffer",
    "EngineBackend",
    "Engine",
    "WorkerAssignment",
    "WorkerDeath",
    "available_backends",
    "create_backend",
    "shared_job_backends",
    "register_backend",
    "register_lazy_backend",
]

#: Blocking-poll granularity of the drain loop, in seconds.
_POLL_SECONDS = 0.05

#: Reassignment budget: at most this many recoveries per initial worker.
#: A routine that kills every worker it is given would otherwise respawn
#: replacements forever; past the budget the engine fails the run.
_RECOVERY_FACTOR = 4


@dataclass(frozen=True)
class WorkerAssignment:
    """One unit of the work plan: a worker rank and its quota.

    Attributes:
        rank: Processor index — both the collector lane the worker's
            messages arrive on and the "processors" subsequence of the
            RNG hierarchy it draws from.
        quota: Realizations assigned to the rank, or None when the
            backend self-schedules (the simulated cluster's ``dynamic``
            mode); reassignment needs a known quota.
        recovery: True when this assignment re-issues a dead worker's
            remaining quota on a fresh subsequence.
        job: Identifier of the owning :class:`~repro.runtime.job.Job`
            when the assignment is dispatched by a multi-job
            :class:`~repro.runtime.scheduler.Scheduler`; ``None`` on
            the classic single-run path.  Backends route the worker's
            messages (and its death) back to this job.
    """

    rank: int
    quota: int | None
    recovery: bool = False
    job: str | None = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(
                f"assignment rank must be >= 0, got {self.rank}")
        if self.quota is not None and self.quota < 0:
            raise ConfigurationError(
                f"assignment quota must be >= 0, got {self.quota}")


@dataclass(frozen=True)
class WorkerDeath:
    """A worker that will never deliver its final message.

    Attributes:
        rank: The dead worker's rank.
        exitcode: OS exit code when known (None for simulated nodes).
        detail: Human-readable cause, e.g. the injected failure time.
        job: Identifier of the job the dead worker was running for
            (``None`` on the classic single-run path); the scheduler
            routes the death to that job's recovery bookkeeping.
    """

    rank: int
    exitcode: int | None = None
    detail: str = ""
    job: str | None = None

    def describe(self) -> str:
        """The ``rank N (...)`` fragment used in error messages."""
        cause = (self.detail if self.detail
                 else f"exitcode {self.exitcode}")
        prefix = f"job {self.job} " if self.job is not None else ""
        return f"{prefix}rank {self.rank} ({cause})"


@runtime_checkable
class Backend(Protocol):
    """Execution strategy driven by the :class:`Engine`.

    A backend never touches the session lifecycle: it only starts
    workers, surfaces their messages, and reports their deaths.  The
    engine binds itself before the first ``spawn`` via :meth:`bind`,
    giving the backend access to the routine, config, collector and
    telemetry it may need.
    """

    name: str

    def bind(self, engine: "Engine") -> None:
        """Receive the engine context before any other call."""
        ...

    def spawn(self, plan: Sequence[WorkerAssignment]
              ) -> list[dict] | None:
        """Start one worker per assignment.

        May be called again mid-run with recovery assignments.  The
        optional return value supplies per-assignment extra fields for
        the ``worker_start`` telemetry event (e.g. the OS pid).
        """
        ...

    def poll(self, timeout: float
             ) -> MomentMessage | CombinedMessage | None:
        """Return the next worker or reducer message, or None.

        Backends that deliver messages out-of-band (directly into the
        collector via :meth:`Engine.ingest`) always return None and make
        progress inside the call instead.  A backend running a
        reduction tree (see :mod:`repro.runtime.reduction`) surfaces
        the interior nodes' :class:`~repro.runtime.messages
        .CombinedMessage` forwards through the same channel.
        """
        ...

    def reap(self) -> list[WorkerDeath]:
        """Report workers that died short of their final message.

        Called when :meth:`poll` comes back empty.  Implementations must
        drain any messages still in flight from a suspect worker before
        declaring it dead — a delivered-but-queued final message means
        the worker finished, and a queued non-final message must reach
        the collector (advancing the rank's watermark) before any
        reassignment is sized.  The contract, shared by the
        multiprocess and distributed backends via :class:`DrainBuffer`:

        1. Drain the message channel completely.  If anything was
           drained, return ``[]`` — the engine ingests the buffered
           messages first and calls ``reap`` again on the next empty
           poll.
        2. Only on an empty drain, judge the suspects: a nonzero exit
           is dead on sight; a clean exit whose final message has not
           arrived gets ``config.death_grace`` seconds before the
           verdict; a rank in ``collector.final_ranks`` is never dead.
        """
        ...

    def shutdown(self) -> None:
        """Release resources; called exactly once, error or not."""
        ...

    @property
    def done(self) -> bool:
        """True when the backend can produce no further messages."""
        ...


class EngineBackend:
    """Convenience base class with the defaults shared by all backends.

    Subclasses implement :meth:`spawn`, :meth:`poll`, :meth:`reap` and
    :meth:`shutdown`; everything else — the run clock, the work plan,
    result accounting — has a sensible real-time default here.
    """

    name = "abstract"
    #: Collector ``persist_subtotals`` override (None = collector default).
    persist_subtotals: bool | None = None
    #: Virtual run seconds (``T_comp``); stays None on real-time backends.
    virtual_time: float | None = None
    #: Whether the engine should flag silent workers with ``stale_worker``
    #: telemetry events.  Meaningful only for backends whose workers report
    #: asynchronously; the sequential loop and the virtual cluster opt out.
    monitors_staleness = False
    #: Whether the backend can interleave assignments from different jobs
    #: of one :class:`~repro.runtime.scheduler.Scheduler` run.  Backends
    #: that opt in must route each assignment's job context (routine,
    #: config, deadline, telemetry) through ``engine.job_context(job)``
    #: and tag every message and death with the owning job id.
    supports_shared_jobs = False

    def __init__(self) -> None:
        self.engine: Engine | None = None
        self.routine = None
        self.config: RunConfig | None = None
        self.collector: Collector | None = None
        self.deadline: float | None = None
        self._done = False

    # -- context ---------------------------------------------------------

    def bind(self, engine: "Engine") -> None:
        """Adopt the engine context (routine, config, collector, ...)."""
        self.engine = engine
        self.routine = engine.routine
        self.config = engine.config
        self.collector = engine.collector
        if engine.config.time_limit is not None:
            self.deadline = engine.started + engine.config.time_limit

    def clock(self) -> float:
        """The run clock; virtual backends override this."""
        return time.monotonic()

    def telemetry_epoch(self, started: float) -> float:
        """Clock value subtracted from telemetry timestamps."""
        return started

    # -- work plan and results -------------------------------------------

    def plan(self) -> list[WorkerAssignment]:
        """The initial work plan: the config's even static split."""
        config = self.config
        return [WorkerAssignment(rank, config.worker_quota(rank))
                for rank in range(config.processors)]

    def per_rank_volumes(self, collector: Collector,
                         ranks: Sequence[int]) -> dict[int, int]:
        """Final per-worker volumes for the result (collector's view)."""
        return {rank: collector.worker_volume(rank) for rank in ranks}

    def session_volume(self, collector: Collector) -> int:
        """Realizations this session contributed to the estimate."""
        return collector.session_volume

    def finish(self) -> None:
        """Success-path accounting hook, before the final save."""

    # -- protocol stubs ----------------------------------------------------

    def reap(self) -> list[WorkerDeath]:
        return []

    def shutdown(self) -> None:
        pass

    @property
    def done(self) -> bool:
        return self._done


class DrainBuffer:
    """Drain-before-verdict buffer shared by asynchronous backends.

    Backends whose workers report through a queue (multiprocess) or a
    socket thread (distributed) must never declare a worker dead while
    its messages sit undelivered in the channel: a queued *final*
    message means the worker actually finished, and a queued non-final
    message moves the watermark that sizes any reassignment.  This
    helper centralizes the pattern:

    * ``poll`` returns :meth:`pop` results before reading the channel,
      so drained messages reach the engine in order;
    * ``reap`` calls :meth:`drain` first and returns no deaths when it
      buffered anything — verdicts wait for a provably empty channel.

    Args:
        fetch_nowait: Zero-argument callable returning the next queued
            message, raising :class:`queue.Empty` when there is none.
            Evaluated at call time, so a backend may rebind its
            underlying channel (tests do).
        rings: Optional zero-argument callable yielding the shared-
            memory rings the collector consumes directly (the
            ``transport="shm"`` path); each must expose
            ``receive() -> message | None``.  Rings drain before the
            queue so the zero-copy path cannot starve behind pickled
            traffic, and the drain-before-verdict guarantee covers
            both channels.
    """

    def __init__(self, fetch_nowait: Callable[[], MomentMessage],
                 rings: Callable[[], Sequence] | None = None) -> None:
        self._fetch = fetch_nowait
        self._rings = rings
        self._buffer: deque[MomentMessage | CombinedMessage] = deque()

    def __len__(self) -> int:
        return len(self._buffer)

    def pop(self) -> MomentMessage | None:
        """The oldest buffered message, or None when empty."""
        if self._buffer:
            return self._buffer.popleft()
        return None

    def drain(self) -> bool:
        """Move every pending message into the buffer; True if any were."""
        drained = False
        if self._rings is not None:
            for ring in self._rings():
                while True:
                    message = ring.receive()
                    if message is None:
                        break
                    self._buffer.append(message)
                    drained = True
        while True:
            try:
                self._buffer.append(self._fetch())
            except queue_module.Empty:
                break
            drained = True
        return drained


# ---------------------------------------------------------------------------
# Backend registry

_FACTORIES: dict[str, Callable[..., Backend]] = {}
_LAZY: dict[str, str] = {}
#: Names in first-registration order.  Kept separately so resolving a
#: lazy entry (which eagerly registers the factory) cannot reshuffle
#: ``available_backends()``.
_ORDER: list[str] = []


def register_backend(name: str, factory: Callable[..., Backend] | None = None):
    """Register a backend factory under ``name``; usable as a decorator.

    The registry is the single source of backend names: ``parmonc()``
    validates against it and the CLI offers its names as choices.
    Re-registering a name that already has a *different* eager factory
    is an error; resolving a lazy entry (see
    :func:`register_lazy_backend`) is not.

    Example:
        >>> @register_backend("null")                   # doctest: +SKIP
        ... class NullBackend(EngineBackend): ...
    """

    def register(factory: Callable[..., Backend]):
        existing = _FACTORIES.get(name)
        if existing is not None and existing is not factory:
            raise ConfigurationError(
                f"backend {name!r} is already registered")
        _FACTORIES[name] = factory
        _LAZY.pop(name, None)
        if name not in _ORDER:
            _ORDER.append(name)
        return factory

    if factory is not None:
        return register(factory)
    return register


def register_lazy_backend(name: str, module: str) -> None:
    """Register a backend whose module is imported on first use.

    This is how the simulated-cluster backend joins the registry
    without creating an import cycle: ``repro.runtime`` records only
    the module path; importing the module (which pulls in
    ``repro.cluster``) happens when the backend is first requested, and
    the module's own :func:`register_backend` call completes the entry.
    """
    if name in _FACTORIES or name in _LAZY:
        return
    _LAZY[name] = module
    if name not in _ORDER:
        _ORDER.append(name)


def available_backends() -> tuple[str, ...]:
    """Every registered backend name, eager and lazy, in registration order.

    The order is first-registration order and stays stable when a lazy
    backend's module is imported (directly or via first use).
    """
    return tuple(name for name in _ORDER
                 if name in _FACTORIES or name in _LAZY)


def shared_job_backends() -> tuple[str, ...]:
    """Backend names whose class declares ``supports_shared_jobs``.

    Used by the scheduler's submit-time rejection message so the caller
    learns which backends *can* multiplex concurrent jobs.  Resolving
    the answer for a lazy entry imports its module (the class attribute
    cannot be read otherwise); the registration order is unaffected.
    """
    names = []
    for name in available_backends():
        try:
            factory = _resolve_factory(name)
        except ConfigurationError:
            continue
        if getattr(factory, "supports_shared_jobs", False):
            names.append(name)
    return tuple(names)


def _resolve_factory(name: str) -> Callable[..., Backend]:
    factory = _FACTORIES.get(name)
    if factory is not None:
        return factory
    module = _LAZY.get(name)
    if module is not None:
        importlib.import_module(module)
        factory = _FACTORIES.get(name)
        if factory is not None:
            return factory
        raise ConfigurationError(
            f"module {module!r} did not register backend {name!r}")
    raise ConfigurationError(
        f"unknown backend {name!r}; choose from {available_backends()}")


def create_backend(name: str, **options) -> Backend:
    """Instantiate a registered backend by name.

    ``options`` is the union of every backend-specific knob the caller
    carries (``start_method``, ``cluster_spec``, ...); each factory
    receives only the keywords its signature accepts, so options that
    belong to a different backend are ignored — matching how
    ``parmonc()`` has always tolerated them.
    """
    factory = _resolve_factory(name)
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return factory(**options)
    if any(p.kind is p.VAR_KEYWORD for p in parameters.values()):
        return factory(**options)
    accepted = {key: value for key, value in options.items()
                if key in parameters}
    return factory(**accepted)


# ---------------------------------------------------------------------------
# The engine

class Engine:
    """Classic single-session driver — a one-job scheduler underneath.

    The per-run state that used to live here (collector, telemetry,
    quota plan, recovery bookkeeping, result assembly) moved to
    :class:`~repro.runtime.job.Job`, and the drain loop to
    :class:`~repro.runtime.scheduler.Scheduler`; this class submits one
    *anonymous* job (its messages and assignments carry ``job=None``
    and stay byte-identical to the historical format) and exposes the
    surface backends have always bound against — ``routine``,
    ``config``, ``collector``, ``telemetry``, ``started`` and
    :meth:`ingest`.  Worker deaths raise exactly as before; nothing is
    contained per job on this path.

    Args:
        backend: The execution strategy (an object satisfying
            :class:`Backend`, usually an :class:`EngineBackend`).
        config: The run configuration.
        use_files: Write ``parmonc_data`` result files and save-points;
            disable for throwaway in-memory estimation.
    """

    def __init__(self, backend: Backend, config: RunConfig,
                 use_files: bool = True) -> None:
        self._backend = backend
        self.config = config
        self._use_files = use_files
        self.routine = None
        self.collector: Collector | None = None
        self.telemetry = None
        self.started = 0.0
        self._scheduler = None

    # -- lifecycle ---------------------------------------------------------

    def run(self, routine) -> RunResult:
        """Run one session; return its :class:`RunResult`.

        Raises:
            BackendError: When a worker dies under the ``"fail"`` policy,
                or recovery is impossible under ``"reassign"``.
        """
        # Imported here: scheduler/job import this module for the
        # assignment and registry types.
        from repro.runtime.job import JobSpec
        from repro.runtime.scheduler import Scheduler

        self.routine = routine
        scheduler = Scheduler(self._backend, _engine=self)
        self._scheduler = scheduler
        job = scheduler.submit(JobSpec(routine=routine, config=self.config,
                                       use_files=self._use_files))
        scheduler.run()
        return job.result

    # -- backend-facing context --------------------------------------------

    def ingest(self, message: MomentMessage | CombinedMessage,
               now: float) -> None:
        """Deliver one worker or reducer message to the collector.

        Backends that bypass :meth:`Backend.poll` (the sequential loop,
        the cluster simulation's internal delivery) call this directly.
        A :class:`CombinedMessage` — an interior reducer's coalesced
        forward — lands through
        :meth:`~repro.runtime.collector.Collector.receive_combined`,
        paying one collector cycle for its whole batch of entries.
        """
        self._scheduler.ingest(message, now)

    def job_context(self, job_id: str | None = None):
        """The job owning ``job_id`` (the anonymous job for ``None``)."""
        return self._scheduler.job_context(job_id)

    @property
    def all_complete(self) -> bool:
        """True once the (single) job has left the drain loop."""
        return self._scheduler.all_complete
