"""Zero-copy shared-memory transport for same-host moment passes.

The queue transport pickles every pass — for the paper's 1000 x 2
performance test that is a 128,064-byte serialize/deserialize round
trip per message, paid once in the worker and once at rank 0.  But the
moment payload has a *fixed layout*: two ``nrow x ncol`` float64
matrices plus a handful of scalars.  This module ships it through a
per-worker ``multiprocessing.shared_memory`` ring buffer instead: the
producer writes the matrices as raw ndarray views (one memcpy, no
serialization), the consumer reads them as views and copies them out,
and only the optional variable-size tail (piggybacked telemetry
metrics, extra statistics) is pickled — into a bounded per-slot area.
Anything that does not fit a slot — an oversized statistics payload, a
momentarily full ring — falls back to the queue path, so the transport
is lossless by construction and ``transport="shm"`` never changes
*what* arrives, only how fast.

Wire layout (all offsets 8-byte aligned, little-endian)::

    ring header (64 B): magic, nrow, ncol, slots, extra_cap,
                        head, tail, fallbacks
    slot (64 B + payload): seq, rank, volume, flags,
                           sent_at (f64), compute_time (f64),
                           extra_len, reserved,
                           sum1 [nrow*ncol f64], sum2 [nrow*ncol f64],
                           extra [extra_cap bytes, pickled tail]

Single-producer/single-consumer protocol: the producer fills the slot
payload, then writes ``seq = head + 1`` (the commit word), then
publishes ``head + 1``; the consumer reads a slot only when ``head``
has advanced past ``tail`` *and* the commit word matches ``tail + 1``,
copies the payload out, and only then publishes the new ``tail``.  A
torn or in-flight slot therefore never surfaces; a reader crash leaves
the ring consistent.

**Resource-tracker hygiene.**  On Python < 3.13 merely *attaching* a
``SharedMemory`` registers it with the process's resource tracker
(cpython #82300), so a SIGKILLed worker leaves "leaked shared_memory"
warnings and — worse — the tracker unlinks segments the parent still
owns.  :func:`attach_ring` unregisters right after attaching (the
``track=False`` keyword exists only on 3.13+); the creating backend is
the single owner and unlinks every segment in ``shutdown``.  Segment
names embed the creator's pid so :func:`sweep_orphans` can reclaim
segments whose creator died before it could clean up.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError
from repro.runtime.messages import MomentMessage
from repro.stats.accumulator import MomentSnapshot

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None
    shared_memory = None

__all__ = [
    "ShmRing",
    "ShmSender",
    "attach_ring",
    "segment_name",
    "shm_available",
    "sweep_orphans",
]

#: ``"PMNC"`` little-endian — guards against attaching a foreign segment.
_MAGIC = 0x434E4D50

#: Header fields: magic, nrow, ncol, slots, extra_cap, head, tail,
#: fallbacks — eight 8-byte words.
_HEADER = struct.Struct("<8Q")
_HEAD_OFFSET = 5 * 8
_TAIL_OFFSET = 6 * 8
_FALLBACK_OFFSET = 7 * 8

#: Slot header: seq, rank, volume, flags, sent_at, compute_time,
#: extra_len, reserved.
_SLOT = struct.Struct("<4Q2d2Q")

_FLAG_FINAL = 1
_FLAG_EXTRA = 2

#: Default ring geometry: slots per worker and pickled-tail capacity.
DEFAULT_SLOTS = 8
DEFAULT_EXTRA = 8192

#: Prefix of every segment this library creates (``/dev/shm/parmonc_*``).
_PREFIX = "parmonc"


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` works on this platform."""
    return shared_memory is not None


def segment_name(suffix: str) -> str:
    """A fresh segment name encoding the creating pid.

    ``parmonc_<pid>_<token>_<suffix>`` — the pid lets
    :func:`sweep_orphans` decide whether the creator is still alive,
    the random token keeps concurrent runs of one process apart.
    """
    return (f"{_PREFIX}_{os.getpid()}_{os.urandom(3).hex()}_{suffix}")


def _unregister(segment) -> None:
    """Drop a segment from the resource tracker, if tracked.

    The tracker is one process shared by the whole fork tree, so every
    ``SharedMemory`` construction — create *and* attach — must be
    balanced here or registrations interleave across processes and the
    tracker logs spurious KeyErrors at unlink time.
    """
    if resource_tracker is None:
        return
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _reregister(segment) -> None:
    """Put a segment back under tracker control (just before unlink)."""
    if resource_tracker is None:
        return
    try:
        resource_tracker.register(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def attach_ring(name: str) -> "ShmRing":
    """Attach to an existing ring without adopting its lifetime.

    The attachment is immediately unregistered from the resource
    tracker (see the module docstring): the creating backend owns the
    segment and is the only place that unlinks it.
    """
    if shared_memory is None:  # pragma: no cover
        raise ConfigurationError(
            "multiprocessing.shared_memory is unavailable on this "
            "platform; use transport='queue'")
    try:
        segment = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track keyword
        segment = shared_memory.SharedMemory(name=name)
        _unregister(segment)
    return ShmRing(segment, owner=False)


def sweep_orphans() -> list[str]:
    """Unlink segments whose creating process is gone; return their names.

    Runs at backend bootstrap: a SIGKILLed run never reaches
    ``shutdown``, so its segments survive in ``/dev/shm`` until the
    next run sweeps them.  Only segments carrying this library's
    ``parmonc_<pid>_`` prefix are touched, and only when the embedded
    pid no longer names a live process.
    """
    shm_dir = Path("/dev/shm")
    if shared_memory is None or not shm_dir.is_dir():
        return []
    removed = []
    for path in shm_dir.glob(f"{_PREFIX}_*"):
        parts = path.name.split("_")
        try:
            pid = int(parts[1])
        except (IndexError, ValueError):
            continue
        try:
            os.kill(pid, 0)
            continue  # creator still alive: not an orphan
        except ProcessLookupError:
            pass
        except PermissionError:  # pragma: no cover - pid reused by root
            continue
        try:
            path.unlink()
            removed.append(path.name)
        except OSError:  # pragma: no cover - raced another sweeper
            pass
    return removed


class ShmRing:
    """One single-producer/single-consumer moment ring buffer.

    Create with :meth:`create` in the owning (collector-side) process,
    attach everywhere else with :func:`attach_ring`.  ``try_send`` and
    ``receive`` are lock-free and never block.
    """

    def __init__(self, segment, owner: bool) -> None:
        self._segment = segment
        self._owner = owner
        header = _HEADER.unpack_from(segment.buf, 0)
        if header[0] != _MAGIC:
            raise ConfigurationError(
                f"segment {segment.name!r} is not a parmonc ring")
        self._nrow = header[1]
        self._ncol = header[2]
        self._slots = header[3]
        self._extra_cap = header[4]
        self._matrix = int(self._nrow * self._ncol)
        self._slot_size = _SLOT.size + 16 * self._matrix + self._extra_cap
        self._unlinked = False

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def create(cls, name: str, shape: tuple[int, int],
               slots: int = DEFAULT_SLOTS,
               extra_capacity: int = DEFAULT_EXTRA) -> "ShmRing":
        """Create and own a fresh ring for one ``nrow x ncol`` stream."""
        if shared_memory is None:  # pragma: no cover
            raise ConfigurationError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform; use transport='queue'")
        if slots < 2:
            raise ConfigurationError(
                f"a ring needs at least 2 slots, got {slots}")
        nrow, ncol = shape
        slot_size = _SLOT.size + 16 * nrow * ncol + extra_capacity
        size = _HEADER.size + slots * slot_size
        segment = shared_memory.SharedMemory(name=name, create=True,
                                             size=size)
        # Lifetime is managed explicitly (shutdown unlinks, the
        # bootstrap sweep reclaims crashes); take the segment away from
        # the tracker so attach/detach churn in child processes cannot
        # unbalance its bookkeeping.
        _unregister(segment)
        _HEADER.pack_into(segment.buf, 0, _MAGIC, nrow, ncol, slots,
                          extra_capacity, 0, 0, 0)
        return cls(segment, owner=True)

    @property
    def name(self) -> str:
        """The segment name (pass to :func:`attach_ring`)."""
        return self._segment.name

    @property
    def shape(self) -> tuple[int, int]:
        """``(nrow, ncol)`` of the payload matrices."""
        return (int(self._nrow), int(self._ncol))

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - lingering views
            pass

    def unlink(self) -> None:
        """Remove the segment; owner-side, idempotent.

        ``SharedMemory.unlink`` unregisters from the resource tracker
        unconditionally; re-register first so the bookkeeping balances
        (creation handed the segment off to explicit management).
        """
        if self._unlinked:
            return
        self._unlinked = True
        _reregister(self._segment)
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass

    # -- counters -------------------------------------------------------

    def _read_word(self, offset: int) -> int:
        return struct.unpack_from("<Q", self._segment.buf, offset)[0]

    def _write_word(self, offset: int, value: int) -> None:
        struct.pack_into("<Q", self._segment.buf, offset, value)

    def occupancy(self) -> int:
        """Committed-but-unread slots (0..slots)."""
        return self._read_word(_HEAD_OFFSET) - self._read_word(_TAIL_OFFSET)

    @property
    def slots(self) -> int:
        """Ring capacity in slots."""
        return int(self._slots)

    @property
    def fallbacks(self) -> int:
        """Messages the producer diverted to the queue path."""
        return self._read_word(_FALLBACK_OFFSET)

    def note_fallback(self) -> None:
        """Producer-side: count one message that took the queue instead."""
        self._write_word(_FALLBACK_OFFSET,
                         self._read_word(_FALLBACK_OFFSET) + 1)

    # -- data path ------------------------------------------------------

    def _slot_offset(self, index: int) -> int:
        return _HEADER.size + (index % self._slots) * self._slot_size

    def try_send(self, message: MomentMessage) -> bool:
        """Write one message; False when it must take the queue path.

        Refuses (without side effects) when the ring is full or the
        pickled tail exceeds the slot's bounded extra area — the caller
        falls back to the queue, so nothing is ever dropped.
        """
        if message.snapshot.shape != self.shape:
            return False
        extra = b""
        flags = _FLAG_FINAL if message.final else 0
        if message.metrics is not None or message.statistics is not None:
            extra = pickle.dumps((message.metrics, message.statistics),
                                 protocol=pickle.HIGHEST_PROTOCOL)
            if len(extra) > self._extra_cap:
                return False
            flags |= _FLAG_EXTRA
        head = self._read_word(_HEAD_OFFSET)
        if head - self._read_word(_TAIL_OFFSET) >= self._slots:
            return False
        offset = self._slot_offset(head)
        buf = self._segment.buf
        _SLOT.pack_into(buf, offset, head + 1, message.rank,
                        message.snapshot.volume, flags, message.sent_at,
                        message.snapshot.compute_time, len(extra), 0)
        arrays = offset + _SLOT.size
        view = np.frombuffer(buf, dtype=np.float64,
                             count=2 * self._matrix, offset=arrays)
        view[:self._matrix] = message.snapshot.sum1.ravel()
        view[self._matrix:] = message.snapshot.sum2.ravel()
        if extra:
            extra_at = arrays + 16 * self._matrix
            buf[extra_at:extra_at + len(extra)] = extra
        # Publish: the commit word is already in place (it is the slot
        # header's seq field, written above); advancing head makes the
        # slot visible to the consumer.
        self._write_word(_HEAD_OFFSET, head + 1)
        return True

    def send(self, message: MomentMessage, timeout: float = 0.05) -> bool:
        """``try_send`` with a brief bounded wait for a free slot."""
        deadline = time.monotonic() + timeout
        while True:
            if self.try_send(message):
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.0005)

    def receive(self) -> MomentMessage | None:
        """Read and pop one message; None when the ring is empty."""
        tail = self._read_word(_TAIL_OFFSET)
        if self._read_word(_HEAD_OFFSET) <= tail:
            return None
        offset = self._slot_offset(tail)
        buf = self._segment.buf
        (seq, rank, volume, flags, sent_at, compute_time, extra_len,
         _reserved) = _SLOT.unpack_from(buf, offset)
        if seq != tail + 1:
            # The producer advanced head before the slot was coherent —
            # impossible in program order, but the commit check keeps a
            # torn read from ever surfacing.
            return None
        arrays = offset + _SLOT.size
        shape = self.shape
        view = np.frombuffer(buf, dtype=np.float64,
                             count=2 * self._matrix, offset=arrays)
        sum1 = view[:self._matrix].reshape(shape).copy()
        sum2 = view[self._matrix:].reshape(shape).copy()
        metrics = statistics = None
        if flags & _FLAG_EXTRA:
            extra_at = arrays + 16 * self._matrix
            metrics, statistics = pickle.loads(
                bytes(buf[extra_at:extra_at + extra_len]))
        del view
        self._write_word(_TAIL_OFFSET, tail + 1)
        return MomentMessage(
            rank=int(rank),
            snapshot=MomentSnapshot(sum1=sum1, sum2=sum2,
                                    volume=int(volume),
                                    compute_time=compute_time),
            sent_at=sent_at, final=bool(flags & _FLAG_FINAL),
            metrics=metrics, statistics=statistics)


class ShmSender:
    """The worker-side ``send`` callable: ring first, queue fallback.

    Args:
        ring: The worker's attached :class:`ShmRing`.
        fallback: ``Queue.put``-shaped callable for messages the ring
            cannot take (full past the bounded wait, oversized tail).
        wait: Seconds to wait for a free slot before falling back.
    """

    def __init__(self, ring: ShmRing, fallback, wait: float = 0.05) -> None:
        self._ring = ring
        self._fallback = fallback
        self._wait = wait

    def __call__(self, message: MomentMessage) -> None:
        if not self._ring.send(message, timeout=self._wait):
            self._ring.note_fallback()
            self._fallback(message)
