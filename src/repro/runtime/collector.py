"""The 0-th processor's job: receive, average, save (§2.2).

The collector keeps the *latest cumulative* snapshot per worker rank.
Averaging merges the resume base with every latest snapshot — formula
(5) with per-worker volumes ``l_m`` that may differ, exactly as the
paper allows ("the sample volumes l_m ... may be different at the moment
of passing data").

When a run enables telemetry the collector doubles as rank 0's
instrumentation point: it stamps a last-seen watermark per rank, counts
stale (out-of-order) messages, times every averaging round, and feeds
piggybacked worker stats to the :class:`~repro.obs.telemetry
.RunTelemetry` aggregator.
"""

from __future__ import annotations

import logging
import time
from typing import Mapping

from repro.exceptions import ConfigurationError
from repro.obs.telemetry import RunTelemetry
from repro.runtime.config import RunConfig
from repro.runtime.files import DataDirectory
from repro.runtime.messages import CombinedMessage, MomentMessage
from repro.stats.accumulator import MomentSnapshot
from repro.stats.estimators import Estimates
from repro.stats.merging import merge_snapshots, merge_statistic_maps
from repro.stats.statistic import Statistic

__all__ = ["Collector"]

_logger = logging.getLogger(__name__)


class Collector:
    """Rank-0 state machine: receive moments, average periodically, save.

    Args:
        config: The run configuration (``peraver`` and shape matter).
        base: Moments inherited from resumed sessions (zero snapshot for
            a fresh run).
        data: Data directory for result files and save-points; pass None
            to keep the collector purely in memory (used by the
            discrete-event cluster simulation's fast path).
        sessions: Session index recorded in ``func_log.dat``.
        persist_subtotals: Whether to mirror each worker's latest
            snapshot into ``savepoints/processor_<m>.json`` (the
            ``manaver`` recovery input).  Defaults to True whenever a
            data directory is given.
        telemetry: Optional :class:`~repro.obs.telemetry.RunTelemetry`
            to instrument against; None (the default) keeps the hot
            path free of any telemetry work.
        base_statistics: Extra statistics inherited from resumed
            sessions, keyed by kind; they merge under the session's
            incoming extras exactly like ``base`` merges under the
            moments.
    """

    def __init__(self, config: RunConfig, base: MomentSnapshot,
                 data: DataDirectory | None = None, *, sessions: int = 1,
                 persist_subtotals: bool | None = None,
                 telemetry: RunTelemetry | None = None,
                 base_statistics: Mapping[str, Statistic] | None = None
                 ) -> None:
        if base.shape != config.shape:
            raise ConfigurationError(
                f"resume base shape {base.shape} does not match the "
                f"configured {config.shape}")
        for kind, statistic in (base_statistics or {}).items():
            if statistic.shape != config.shape:
                raise ConfigurationError(
                    f"resume base statistic {kind!r} has shape "
                    f"{statistic.shape}, expected {config.shape}")
        self._config = config
        self._base = base
        self._base_statistics = dict(base_statistics or {})
        self._data = data
        self._sessions = sessions
        self._persist = (persist_subtotals if persist_subtotals is not None
                         else data is not None)
        self._telemetry = telemetry
        self._latest: dict[int, MomentSnapshot] = {}
        self._latest_extras: dict[int, Mapping[str, Statistic]] = {}
        self._finals: set[int] = set()
        self._expected: set[int] = set(range(config.processors))
        self._retired: set[int] = set()
        self._expected_since: dict[int, float] = {}
        self._last_seen: dict[int, float] = {}
        self._epoch: float | None = None
        self._last_average_at: float | None = None
        self._receive_count = 0
        self._stale_count = 0
        self._late_count = 0
        self._combined_count = 0
        self._save_count = 0
        self._history: list[tuple[float, int, float]] = []

    # ------------------------------------------------------------------

    @property
    def receive_count(self) -> int:
        """Messages received so far (stale ones included)."""
        return self._receive_count

    @property
    def stale_count(self) -> int:
        """Out-of-order messages dropped because a newer snapshot won."""
        return self._stale_count

    @property
    def late_count(self) -> int:
        """Messages dropped because their rank had already been retired."""
        return self._late_count

    @property
    def combined_count(self) -> int:
        """Combined (tree-reduced) messages ingested so far.

        Each one carried a batch of per-rank entries — all counted in
        :attr:`receive_count` — but cost the collector a single
        ingest/save-due cycle, which is the saving the reduction tree
        exists to make.
        """
        return self._combined_count

    @property
    def save_count(self) -> int:
        """Averaging/saving sweeps performed so far."""
        return self._save_count

    @property
    def history(self) -> tuple[tuple[float, int, float], ...]:
        """Convergence trace: ``(time, volume, eps_max)`` per save.

        Recorded only when the collector writes result files (each
        entry corresponds to one PARMONC save-point), so in-memory
        timing studies pay no estimator cost.
        """
        return tuple(self._history)

    @property
    def finals_received(self) -> int:
        """Number of workers that have sent their final message."""
        return len(self._finals)

    @property
    def final_ranks(self) -> frozenset[int]:
        """Ranks whose final message has arrived."""
        return frozenset(self._finals)

    @property
    def complete(self) -> bool:
        """True when every expected worker has sent a final message.

        The expected set starts as the configured ranks; the engine may
        shrink it (:meth:`retire_rank`, a dead worker whose quota was
        reassigned) or grow it (:meth:`expect_rank`, the replacement).
        """
        return self._expected.issubset(self._finals)

    @property
    def expected_ranks(self) -> frozenset[int]:
        """Ranks the collector currently expects a final message from."""
        return frozenset(self._expected)

    def retire_rank(self, rank: int) -> None:
        """Stop expecting ``rank`` while keeping everything it delivered.

        Used when a dead worker's remaining quota is reassigned: its
        latest cumulative snapshot stays in the merge (the watermark the
        replacement's quota was computed against), but late messages
        from it are dropped and it no longer gates completion.
        """
        if rank not in self._expected:
            raise ConfigurationError(
                f"cannot retire rank {rank}: not an expected rank")
        self._expected.discard(rank)
        self._finals.discard(rank)
        self._retired.add(rank)

    def expect_rank(self, rank: int, now: float | None = None) -> None:
        """Start expecting a final message from ``rank``.

        Args:
            rank: The new worker's processor index; must not collide
                with a live or retired rank.
            now: Run-clock time the worker was spawned; anchors the
                staleness judgement for a rank that has not reported
                yet (see :meth:`stale_workers`).
        """
        if rank in self._expected or rank in self._retired:
            raise ConfigurationError(
                f"rank {rank} is already tracked by the collector")
        self._expected.add(rank)
        if now is not None:
            self._expected_since[rank] = now

    @property
    def last_seen(self) -> dict[int, float]:
        """Per-rank watermark: arrival time of the last accepted message."""
        return dict(self._last_seen)

    def mark_epoch(self, now: float) -> None:
        """Anchor staleness checks: the run-clock time workers started.

        Ranks never heard from are judged against this epoch; without
        one, the first received message's time stands in for it.
        """
        self._epoch = now

    def stale_workers(self, now: float, threshold: float) -> tuple[int, ...]:
        """Ranks not heard from for over ``threshold`` seconds.

        A rank counts as stale when it has not finalized and either has
        never been heard from (watermark taken as the epoch, see
        :meth:`mark_epoch`) or last reported more than ``threshold``
        seconds before ``now``.  Drive this from the backend's poll loop
        to flag unhealthy workers mid-run.
        """
        if threshold < 0:
            raise ConfigurationError(
                f"staleness threshold must be >= 0, got {threshold}")
        epoch = self._epoch
        if epoch is None:
            if not self._last_seen:
                return ()
            epoch = min(self._last_seen.values())
        stale = []
        for rank in sorted(self._expected):
            if rank in self._finals:
                continue
            watermark = self._last_seen.get(
                rank, self._expected_since.get(rank, epoch))
            if now - watermark > threshold:
                stale.append(rank)
        return tuple(stale)

    @property
    def session_volume(self) -> int:
        """Realizations received in this session (excludes resume base)."""
        return sum(s.volume for s in self._latest.values())

    @property
    def total_volume(self) -> int:
        """Total sample volume including resumed sessions."""
        return self._base.volume + self.session_volume

    def worker_volume(self, rank: int) -> int:
        """Latest known sample volume of one worker (0 if unheard from)."""
        snapshot = self._latest.get(rank)
        return snapshot.volume if snapshot is not None else 0

    # ------------------------------------------------------------------

    def receive(self, message: MomentMessage, now: float) -> bool:
        """Ingest one worker message; return True if a save was triggered.

        A save (average + write files + refresh save-points) happens when
        ``peraver`` seconds have passed since the previous one, when
        ``peraver`` is zero (save on every message), or when the message
        completes the run.
        """
        if not self._ingest(message, now):
            return False
        return self._save_if_due(now)

    def receive_combined(self, combined: CombinedMessage,
                         now: float) -> bool:
        """Ingest one reducer forward; return True if a save was triggered.

        Every entry goes through the same latest-per-rank bookkeeping
        as a direct worker pass — same stale/late drops, same
        subtotal persistence — but the batch pays for a *single*
        save-due check, which is precisely the fixed per-message
        collector cost the reduction tree amortizes over its subtree.
        """
        accepted = 0
        for entry in combined.entries:
            if self._ingest(entry, now):
                accepted += 1
        self._combined_count += 1
        if self._telemetry is not None:
            registry = self._telemetry.registry
            registry.counter("collector.combined_messages").inc()
            metrics = combined.metrics or {}
            level = metrics.get("level")
            if level is not None:
                registry.counter(
                    f"reduction.level{level}.forwards").inc()
                registry.counter(
                    f"reduction.level{level}.entries").inc(
                        len(combined.entries))
                drained = metrics.get("drained")
                if drained:
                    registry.counter(
                        f"reduction.level{level}.merged_in").inc(drained)
            self._telemetry.events.append(
                "combined_message", ts=now, node=combined.node_id,
                entries=len(combined.entries), accepted=accepted,
                final=combined.final)
        if not accepted:
            return False
        return self._save_if_due(now)

    def _ingest(self, message: MomentMessage, now: float) -> bool:
        """Latest-per-rank bookkeeping for one entry; True if accepted."""
        if message.rank in self._retired:
            # A retired (dead) worker's message surfaced after its quota
            # was reassigned; folding it in would double-count the
            # realizations the replacement re-simulated.
            self._late_count += 1
            if self._telemetry is not None:
                self._telemetry.registry.counter(
                    "collector.late_messages").inc()
                self._telemetry.events.append(
                    "late_message", ts=now, rank=message.rank,
                    volume=message.snapshot.volume,
                    kept_volume=self.worker_volume(message.rank))
            return False
        if message.rank not in self._expected:
            raise ConfigurationError(
                f"message from unknown rank {message.rank} "
                f"(expected ranks: "
                f"{sorted(self._expected) or 'none'})")
        if message.snapshot.shape != self._config.shape:
            raise ConfigurationError(
                f"message snapshot shape {message.snapshot.shape} does "
                f"not match the configured {self._config.shape}")
        previous = self._latest.get(message.rank)
        if previous is not None and message.snapshot.volume < previous.volume:
            # Stale out-of-order message: cumulative volume can only grow.
            self._stale_count += 1
            if self._telemetry is not None:
                self._telemetry.registry.counter(
                    "collector.stale_messages").inc()
                self._telemetry.events.append(
                    "stale_message", ts=now, rank=message.rank,
                    volume=message.snapshot.volume,
                    kept_volume=previous.volume)
            return False
        self._latest[message.rank] = message.snapshot
        if message.statistics is not None:
            self._latest_extras[message.rank] = message.statistics
        self._last_seen[message.rank] = now
        self._receive_count += 1
        if message.final:
            self._finals.add(message.rank)
        if self._telemetry is not None:
            self._telemetry.registry.counter("collector.messages").inc()
            if message.metrics is not None:
                self._telemetry.record_worker(message.metrics)
            self._telemetry.events.append(
                "message", ts=now, rank=message.rank,
                volume=message.snapshot.volume, final=message.final)
        if self._persist and self._data is not None:
            self._data.save_processor_snapshot(
                message.rank, message.snapshot, session=self._sessions,
                statistics=message.statistics)
        return True

    def _save_if_due(self, now: float) -> bool:
        """Run the periodic averaging/saving sweep when it is due."""
        due = (self._config.peraver == 0.0
               or self._last_average_at is None
               or now - self._last_average_at >= self._config.peraver
               or self.complete)
        if due:
            self.save(now)
            return True
        return False

    def merged(self) -> MomentSnapshot:
        """Formula (5): resume base plus every worker's latest snapshot.

        Snapshots merge in rank order, not arrival order: float sums are
        not associative to the last ulp, and a fixed order is what makes
        estimates bit-identical across backends regardless of how the
        OS interleaved message delivery.
        """
        return merge_snapshots(
            [self._base,
             *(snapshot for _, snapshot in sorted(self._latest.items()))])

    def merged_statistics(self) -> dict[str, Statistic]:
        """The extra statistics merged across base and workers.

        Same discipline as :meth:`merged`: the resume base first, then
        every rank's latest extras in rank order — the fixed
        association that keeps float-summed statistics bit-identical
        across backends.  Kinds are the union of what the base and the
        workers delivered, so a resumed run never drops a statistic an
        earlier session collected.
        """
        return merge_statistic_maps(
            [self._base_statistics,
             *(extras for _, extras
               in sorted(self._latest_extras.items()))])

    def estimates(self) -> Estimates:
        """Result matrices for the current merged sample."""
        merged = self.merged()
        if merged.volume == 0:
            raise ConfigurationError(
                "no realizations received yet; nothing to estimate")
        return merged.estimates()

    def save(self, now: float, elapsed: float | None = None) -> None:
        """Average and write result files (a periodic PARMONC save-point)."""
        self._last_average_at = now
        self._save_count += 1
        if self._data is None and self._telemetry is None:
            return
        round_started = time.perf_counter()
        merged = self.merged()
        if merged.volume == 0:
            return
        estimates = merged.estimates()
        if self._data is not None:
            self._history.append((now, merged.volume,
                                  estimates.abs_error_max))
            self._data.write_results(
                estimates, seqnum=self._config.seqnum,
                processors=self._config.processors, sessions=self._sessions,
                elapsed=elapsed)
        if self._telemetry is not None:
            # The round is timed against the real clock even under
            # simulation: merging cost is a property of this machine,
            # while the event's ``now`` stays on the run clock.
            self._telemetry.averaging_round(
                duration=time.perf_counter() - round_started,
                volume=merged.volume,
                eps_max=float(estimates.abs_error_max),
                save_index=self._save_count, now=now)
        _logger.debug(
            "save-point %d: L=%d, eps_max=%.6g, finals=%d/%d",
            self._save_count, merged.volume, estimates.abs_error_max,
            len(self._finals), self._config.processors)
