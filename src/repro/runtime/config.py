"""Run configuration: the arguments of ``parmoncc``/``parmoncf``.

The original subroutines take ``(subroutine, nrow, ncol, maxsv, res,
seqnum, perpass, peraver)``; :class:`RunConfig` carries the same fields
plus the knobs the original library gets from its environment (number of
processors from MPI, working directory from the shell, job time limit
from the batch system).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.rng.multiplier import DEFAULT_LEAPS, LeapSet
from repro.stats.statistic import DEFAULT_STATISTICS, normalize_statistics

__all__ = ["RunConfig", "minutes"]


def minutes(value: float) -> float:
    """Convert the paper's minute-valued periods to seconds.

    ``perpass=10`` in the paper's example is ``perpass=minutes(10)`` here.
    """
    if value < 0:
        raise ConfigurationError(f"period must be >= 0 minutes, got {value}")
    return value * 60.0


@dataclass(frozen=True)
class RunConfig:
    """Immutable description of one stochastic simulation run.

    Attributes:
        nrow: Rows of the realization matrix ``[zeta_ij]``.
        ncol: Columns of the realization matrix.
        maxsv: Maximal total sample volume to simulate (the run may stop
            earlier on ``time_limit``).
        res: Resumption flag — 0 starts a new simulation, 1 resumes the
            previous one and folds its results in via formula (5).
        seqnum: "Experiments" subsequence number; a resumed session must
            use a ``seqnum`` different from every earlier session's.
        perpass: Period, in seconds, between a worker's data passes to
            the collector.  0 means "after every realization" — the
            paper's strictest performance-test condition.
        peraver: Period, in seconds, between collector averaging/saving
            sweeps.  0 means "on every received message".
        processors: Number of simulated processors ``M``.
        workdir: Directory under which ``parmonc_data/`` is created.
        leaps: Subsequence hierarchy parameters (``genparam`` output).
        time_limit: Optional cap on (virtual or wall) run seconds, the
            analogue of the cluster job time limit.
        telemetry: Record run telemetry — metrics, spans and a JSONL
            event log under ``parmonc_data/telemetry/`` (see
            :mod:`repro.obs`).  Off by default; the backends skip all
            instrumentation when disabled.
        on_worker_death: What the engine does when a backend reports a
            worker that died short of its final message.  ``"fail"``
            (default) aborts the run with a
            :class:`~repro.exceptions.BackendError`; ``"reassign"``
            keeps the dead worker's moments at its last collected
            watermark and reissues the undelivered remainder of its
            quota to a replacement worker on a fresh leaped
            subsequence.
        death_grace: Seconds a cleanly-exited worker may leave its
            final message in flight before it is declared dead (the
            multiprocess backend's dead-child grace period).
        statistics: Registered statistic kinds every worker accumulates
            and ships (see :mod:`repro.stats.statistic`).  Accepts a
            sequence or a comma-separated string; normalized so
            ``"moments"`` — mandatory, it drives estimates and
            completion accounting — always comes first.  The default
            moments-only selection reproduces the historical pipeline
            bit-for-bit.
        reduction_fanout: Width ``k`` of the hierarchical reduction
            tree (see :mod:`repro.runtime.reduction`).  None (the
            default) keeps the flat worker->rank-0 exchange; with a
            fanout of ``k >= 2`` interior reducer nodes coalesce their
            subtree's latest-per-rank snapshots and forward one
            combined message upstream, so the collector serves
            O(fanout) peers instead of O(M) workers.  The collector
            still performs the one canonical rank-ordered merge, so
            estimates stay bit-identical to the flat exchange.
            Honoured by the ``multiprocess`` and ``simcluster``
            backends; other backends run flat.
        transport: Same-host message transport of the ``multiprocess``
            backend.  ``"queue"`` (default) is pickle over
            ``mp.Queue``; ``"shm"`` ships the fixed-layout moment
            payload through a per-worker ``multiprocessing
            .shared_memory`` ring buffer (zero-copy ndarray views, a
            seqnum/commit protocol), falling back to the queue for
            payloads that do not fit a slot.  Other backends ignore
            the knob.
    """

    nrow: int = 1
    ncol: int = 1
    maxsv: int = 1
    res: int = 0
    seqnum: int = 0
    perpass: float = 0.0
    peraver: float = 0.0
    processors: int = 1
    workdir: Path = field(default_factory=Path.cwd)
    leaps: LeapSet = DEFAULT_LEAPS
    time_limit: float | None = None
    telemetry: bool = False
    on_worker_death: str = "fail"
    death_grace: float = 1.0
    statistics: tuple[str, ...] = DEFAULT_STATISTICS
    reduction_fanout: int | None = None
    transport: str = "queue"

    def __post_init__(self) -> None:
        if self.nrow < 1 or self.ncol < 1:
            raise ConfigurationError(
                f"matrix dimensions must be >= 1, got "
                f"{self.nrow}x{self.ncol}")
        if self.maxsv < 1:
            raise ConfigurationError(
                f"maxsv must be >= 1, got {self.maxsv}")
        if self.res not in (0, 1):
            raise ConfigurationError(
                f"res must be 0 (new) or 1 (resume), got {self.res}")
        if self.seqnum < 0:
            raise ConfigurationError(
                f"seqnum must be >= 0, got {self.seqnum}")
        if self.perpass < 0 or self.peraver < 0:
            raise ConfigurationError(
                "perpass and peraver must be >= 0 seconds")
        if self.processors < 1:
            raise ConfigurationError(
                f"processors must be >= 1, got {self.processors}")
        if self.seqnum >= self.leaps.experiment_capacity:
            raise ConfigurationError(
                f"seqnum {self.seqnum} exceeds the experiment capacity "
                f"{self.leaps.experiment_capacity} of the hierarchy")
        if self.processors > self.leaps.processor_capacity:
            raise ConfigurationError(
                f"{self.processors} processors exceed the hierarchy "
                f"capacity {self.leaps.processor_capacity}")
        if self.time_limit is not None and self.time_limit <= 0:
            raise ConfigurationError(
                f"time_limit must be positive when given, "
                f"got {self.time_limit}")
        if self.on_worker_death not in ("fail", "reassign"):
            raise ConfigurationError(
                f"on_worker_death must be 'fail' or 'reassign', "
                f"got {self.on_worker_death!r}")
        if self.death_grace < 0:
            raise ConfigurationError(
                f"death_grace must be >= 0 seconds, "
                f"got {self.death_grace}")
        if self.reduction_fanout is not None and self.reduction_fanout < 2:
            raise ConfigurationError(
                f"reduction_fanout must be >= 2 (or None for the flat "
                f"exchange), got {self.reduction_fanout}")
        if self.transport not in ("queue", "shm"):
            raise ConfigurationError(
                f"transport must be 'queue' or 'shm', "
                f"got {self.transport!r}")
        # Normalize workdir to a Path without touching the filesystem.
        object.__setattr__(self, "workdir", Path(self.workdir))
        # Canonicalize the statistics selection (moments first, known
        # kinds only) so every layer sees the same tuple.
        object.__setattr__(self, "statistics",
                           normalize_statistics(self.statistics))

    @property
    def extra_statistics(self) -> tuple[str, ...]:
        """The declared kinds beyond the mandatory moments."""
        return self.statistics[1:]

    @property
    def shape(self) -> tuple[int, int]:
        """``(nrow, ncol)`` of the realization matrix."""
        return (self.nrow, self.ncol)

    @property
    def data_dir(self) -> Path:
        """``<workdir>/parmonc_data`` — created on first use."""
        return self.workdir / "parmonc_data"

    def worker_quota(self, rank: int) -> int:
        """Realizations statically assigned to processor ``rank``.

        ``maxsv`` is spread as evenly as possible; the first
        ``maxsv % processors`` ranks take one extra realization.
        """
        if not 0 <= rank < self.processors:
            raise ConfigurationError(
                f"rank must be in [0, {self.processors}), got {rank}")
        base, remainder = divmod(self.maxsv, self.processors)
        return base + (1 if rank < remainder else 0)

    def with_updates(self, **changes) -> "RunConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
