"""Per-experiment job state: the unit the scheduler multiplexes.

Historically :class:`~repro.runtime.engine.Engine` owned one session's
entire lifecycle — collector, telemetry, save-points, quota plan,
recovery bookkeeping, result assembly — which welded the runtime to
"one experiment at a time".  This module extracts that per-run state
into :class:`Job`, so a :class:`~repro.runtime.scheduler.Scheduler` can
drive N of them concurrently over one shared backend worker pool while
the single-job path stays bit-identical to the historical engine.

A job owns:

* its experiment configuration (the ``seqnum`` subsequence of the RNG
  hierarchy keeps concurrent jobs statistically independent),
* its :class:`~repro.runtime.collector.Collector`, resume state and
  session directory (``start_session`` / ``finalize_session``),
* its telemetry (:func:`~repro.runtime.telemetry_support
  .open_run_telemetry`) and staleness flags,
* its work plan, in-flight ranks, quotas, and the fault-tolerant
  reassignment bookkeeping (recovery budget, fresh replacement ranks),
* its :class:`~repro.runtime.result.RunResult` and SLA record
  (submit-to-start wait, makespan, deadline misses).

The scheduling policy — fair share, admission, slots — lives in the
scheduler; the job only answers "what do I still need" and "what
happened to me".
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.exceptions import BackendError, ConfigurationError
from repro.runtime.bootstrap import start_session
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.engine import (
    _RECOVERY_FACTOR,
    WorkerAssignment,
    WorkerDeath,
)
from repro.runtime.messages import CombinedMessage, MomentMessage
from repro.runtime.resume import finalize_session
from repro.runtime.result import RunResult
from repro.runtime.telemetry_support import open_run_telemetry

__all__ = ["Job", "JobSpec", "JobStatus"]


class JobStatus:
    """The job lifecycle states (plain strings, stable for reporting).

    ``QUEUED -> RUNNING -> DRAINING -> DONE`` on the happy path;
    ``FAILED`` when the job's death policy raised and the scheduler
    contained the error (shared mode only — the classic single-job
    path propagates instead); ``CANCELLED`` when the caller withdrew
    the job through the streaming service.  Every transition records a
    per-state SLA timestamp in :attr:`Job.state_times`.
    """

    QUEUED = "queued"
    RUNNING = "running"
    #: Drain loop finished for this job; finalization still owed.
    DRAINING = "draining"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: Pre-streaming aliases (PR 8 names), kept for compatibility.
    PENDING = QUEUED
    COMPLETE = DRAINING

    #: States that have left the drain loop.
    TERMINAL = (DRAINING, DONE, FAILED, CANCELLED)
    #: States that need no further scheduler attention at all.
    FINISHED = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """What the caller submits: one experiment and its scheduling knobs.

    Attributes:
        routine: The realization routine (``fn(rng)``, ``fn()``, or a
            batched routine).
        config: The job's :class:`~repro.runtime.config.RunConfig`.
            Each concurrent job should carry its own ``seqnum`` so the
            experiments draw disjoint RNG subsequences, and its own
            ``workdir`` so save-points land in per-job session
            directories.
        name: Stable job identifier; defaults to ``job-<index>`` in
            submission order.
        priority: Fair-share weight (> 0).  A priority-2 job is
            dispatched twice as often as a priority-1 job while both
            are contending for workers.
        max_workers: Per-job cap on concurrently running workers
            (None = no cap beyond the scheduler's global slots).
        deadline: SLA target in seconds from submission.  Advisory:
            the scheduler counts a deadline miss when the job's
            makespan exceeds it; it does not cancel the job (use
            ``config.time_limit`` for hard cancellation).
        use_files: Write ``parmonc_data`` result files and save-points;
            disable for throwaway in-memory estimation.
    """

    routine: object
    config: RunConfig
    name: str | None = None
    priority: float = 1.0
    max_workers: int | None = None
    deadline: float | None = None
    use_files: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.config, RunConfig):
            raise ConfigurationError(
                f"job config must be a RunConfig, got "
                f"{type(self.config).__name__}")
        if not (self.priority > 0.0):
            raise ConfigurationError(
                f"job priority must be > 0, got {self.priority}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError(
                f"job max_workers must be >= 1, got {self.max_workers}")
        if self.deadline is not None and not (self.deadline > 0.0):
            raise ConfigurationError(
                f"job deadline must be > 0 seconds, got {self.deadline}")
        if self.name is not None and (not isinstance(self.name, str)
                                      or not self.name):
            raise ConfigurationError(
                f"job name must be a non-empty string, got {self.name!r}")


class Job:
    """One experiment's live state while a scheduler drives it.

    Everything here used to be attributes of the monolithic engine;
    the semantics (recovery budget, fresh replacement ranks, telemetry
    events, finalization order) are preserved verbatim so a single
    anonymous job reproduces the historical run bit-for-bit.

    Args:
        spec: The submitted :class:`JobSpec`.
        job_id: Stable identifier, or None for the anonymous job of the
            classic single-run path (its messages and assignments then
            stay byte-identical to the historical format).
        index: Submission order, used for deterministic tie-breaking.
    """

    def __init__(self, spec: JobSpec, job_id: str | None,
                 index: int) -> None:
        self.spec = spec
        self.id = job_id
        self.index = index
        #: Per-state SLA stamps (monotonic seconds at each transition).
        self.state_times: dict[str, float] = {}
        #: Set once the job reaches DONE/FAILED/CANCELLED.
        self.finished = threading.Event()
        #: Scheduler hook fired on entry into a FINISHED state.
        self.on_terminal = None
        self._status = None
        self.status = JobStatus.QUEUED
        self.error: BaseException | None = None
        self.result: RunResult | None = None
        # -- scheduling state ------------------------------------------
        self.deficit = 0.0
        self.pending: deque[WorkerAssignment] = deque()
        self.in_flight: set[int] = set()
        self.dispatched = 0
        self.peak_workers = 0
        # -- SLA clock stamps (wall monotonic seconds) -----------------
        self.submitted_wall: float | None = None
        self.started_wall: float | None = None
        self.finished_wall: float | None = None
        self.completed = False
        # -- session state (populated by open()) -----------------------
        self.data = None
        self.state = None
        self.collector: Collector | None = None
        self.telemetry = None
        self.deadline: float | None = None
        self.run_started = 0.0
        self.drain_started: float | None = None
        # -- recovery bookkeeping (formerly Engine attributes) ---------
        self._quotas: dict[int, int | None] = {}
        self._assigned: list[int] = []
        self._recovered: list[int] = []
        self._stale_flagged: set[int] = set()
        self._next_rank = spec.config.processors
        self._recovery_budget = _RECOVERY_FACTOR * spec.config.processors
        self._stale_after: float | None = None
        self._flag_stale_enabled = False

    # -- lifecycle state ------------------------------------------------

    @property
    def status(self) -> str:
        """Current lifecycle state (a :class:`JobStatus` constant)."""
        return self._status

    @status.setter
    def status(self, value: str) -> None:
        self._status = value
        self.state_times[value] = time.monotonic()
        if value in JobStatus.FINISHED:
            self.finished.set()
            if self.on_terminal is not None:
                self.on_terminal(self)

    # -- context the backends read (mirrors the engine surface) --------

    @property
    def routine(self):
        """The realization routine backends run for this job."""
        return self.spec.routine

    @property
    def config(self) -> RunConfig:
        """The job's run configuration."""
        return self.spec.config

    @property
    def priority(self) -> float:
        """Fair-share weight."""
        return self.spec.priority

    # -- lifecycle ------------------------------------------------------

    def open(self, backend, run_started: float) -> None:
        """Resume the session and wire collector + telemetry.

        Mirrors the historical engine prologue exactly: session resume,
        telemetry epoch, collector construction, deadline and staleness
        thresholds.
        """
        config = self.spec.config
        self.run_started = run_started
        data, state = start_session(config, self.spec.use_files)
        telemetry = open_run_telemetry(
            config, data, backend=backend.name, clock=backend.clock,
            epoch=backend.telemetry_epoch(run_started))
        if data is not None and telemetry is not None:
            # Quarantined artifacts surface as storage.quarantined events.
            data.attach_events(telemetry.events)
        collector = Collector(config, state.base, data,
                              sessions=state.session_index,
                              persist_subtotals=backend.persist_subtotals,
                              telemetry=telemetry,
                              base_statistics=state.base_statistics)
        self.data = data
        self.state = state
        self.telemetry = telemetry
        self.collector = collector
        if config.time_limit is not None:
            self.deadline = run_started + config.time_limit
        self._stale_after = (3.0 * config.perpass + 1.0
                             if config.perpass > 0 else None)
        self._flag_stale_enabled = (
            telemetry is not None and self._stale_after is not None
            and getattr(backend, "monitors_staleness", False))

    def initial_plan(self) -> list[WorkerAssignment]:
        """The even static split, tagged with this job's identifier."""
        config = self.spec.config
        return [WorkerAssignment(rank, config.worker_quota(rank),
                                 job=self.id)
                for rank in range(config.processors)]

    # -- message path ---------------------------------------------------

    def ingest(self, message: MomentMessage | CombinedMessage,
               now: float) -> list[int]:
        """Deliver one message to this job's collector.

        Returns the ranks that delivered their final pass, so the
        scheduler can release their worker slots.
        """
        if isinstance(message, CombinedMessage):
            self.collector.receive_combined(message, now)
            entries = message.entries
        else:
            self.collector.receive(message, now)
            entries = (message,)
        finals: list[int] = []
        for entry in entries:
            if self._stale_flagged:
                self._stale_flagged.discard(entry.rank)
            if entry.final:
                finals.append(entry.rank)
                if self.telemetry is not None:
                    stats = entry.metrics or {}
                    self.telemetry.events.append(
                        "worker_final", ts=now, rank=entry.rank,
                        volume=entry.snapshot.volume,
                        messages=stats.get("messages"),
                        bytes=stats.get("bytes"))
        return finals

    def flag_stale(self, now: float) -> None:
        """Emit ``stale_worker`` events for silent ranks (once each)."""
        if not self._flag_stale_enabled:
            return
        for rank in self.collector.stale_workers(now, self._stale_after):
            if rank not in self._stale_flagged:
                self._stale_flagged.add(rank)
                seen = self.collector.last_seen.get(rank)
                self.telemetry.events.append(
                    "stale_worker", ts=now, rank=rank,
                    last_seen=(seen - self.run_started
                               if seen is not None else None))

    # -- work dispatch --------------------------------------------------

    def record_spawn(self, plan, extras=None) -> None:
        """Account for assignments the backend just started."""
        if extras is None:
            extras = [None] * len(plan)
        for assignment, extra in zip(plan, extras):
            self._assigned.append(assignment.rank)
            self._quotas[assignment.rank] = assignment.quota
            self.in_flight.add(assignment.rank)
            self.dispatched += 1
            if self.telemetry is not None:
                fields = dict(extra) if extra else {}
                if assignment.recovery:
                    fields["recovery"] = True
                self.telemetry.events.append(
                    "worker_start", rank=assignment.rank,
                    quota=assignment.quota, **fields)
        self.peak_workers = max(self.peak_workers, len(self.in_flight))

    # -- fault handling -------------------------------------------------

    def handle_deaths(self, deaths, now: float, spawn) -> None:
        """Apply this job's death policy to a batch of worker deaths.

        Args:
            deaths: The :class:`WorkerDeath` records routed to this job.
            now: Backend clock at the reap.
            spawn: ``spawn(job, assignments)`` callback that starts
                replacement workers immediately (the scheduler's
                dispatch path, bypassing the fair-share queue exactly
                like the historical engine respawned inline).
        """
        deaths = sorted(deaths, key=lambda death: death.rank)
        for death in deaths:
            self.in_flight.discard(death.rank)
        if self.telemetry is not None:
            for death in deaths:
                self.telemetry.events.append(
                    "worker_died", ts=now, rank=death.rank,
                    exitcode=death.exitcode,
                    volume=self.collector.worker_volume(death.rank))
            self.telemetry.events.flush()
        if self.spec.config.on_worker_death != "reassign":
            described = ", ".join(death.describe() for death in deaths)
            raise BackendError(
                f"worker process(es) died before delivering a final "
                f"message: {described}")
        for death in deaths:
            self.reassign(death, now, spawn)

    def reassign(self, death: WorkerDeath, now: float, spawn) -> None:
        """Reissue a dead worker's undelivered quota on a fresh stream.

        The collector keeps everything the worker delivered up to its
        last watermark; only the remainder is re-simulated, by a
        replacement worker on the next unused "processors" subsequence,
        so the recovered sample never overlaps the substreams the dead
        worker consumed.
        """
        quota = self._quotas.get(death.rank)
        if quota is None:
            raise BackendError(
                f"cannot reassign the quota of dead worker "
                f"{death.describe()}: its assignment is dynamically "
                f"scheduled")
        delivered = self.collector.worker_volume(death.rank)
        remaining = max(quota - delivered, 0)
        self.collector.retire_rank(death.rank)
        self._recovered.append(death.rank)
        replacement: int | None = None
        if remaining > 0:
            if self._recovery_budget <= 0:
                raise BackendError(
                    f"worker {death.describe()} died but the recovery "
                    f"budget ({_RECOVERY_FACTOR} per worker) is "
                    f"exhausted; the routine appears to kill every "
                    f"worker it is given")
            self._recovery_budget -= 1
            replacement = self._next_rank
            self._next_rank += 1
            if replacement >= self.spec.config.leaps.processor_capacity:
                raise BackendError(
                    f"no fresh processor subsequence left for recovery "
                    f"(hierarchy capacity "
                    f"{self.spec.config.leaps.processor_capacity})")
            self.collector.expect_rank(replacement, now=now)
            spawn(self, [WorkerAssignment(rank=replacement,
                                          quota=remaining,
                                          recovery=True,
                                          job=self.id)])
        if self.telemetry is not None:
            self.telemetry.worker_recovered(
                rank=death.rank, replacement=replacement,
                reassigned=remaining, delivered=delivered, now=now)

    # -- completion -----------------------------------------------------

    def mark_complete(self, completed: bool) -> None:
        """Leave the drain loop; finalization happens after shutdown."""
        self.status = JobStatus.COMPLETE
        self.completed = completed
        self.finished_wall = time.monotonic()
        self.pending.clear()
        self.in_flight.clear()

    def fail(self, error: BaseException) -> None:
        """Contain a per-job failure (shared mode): drop its work.

        ``error`` lands before the FAILED transition so a waiter woken
        by :attr:`finished` always observes it.
        """
        self.error = error
        self.finished_wall = time.monotonic()
        self.pending.clear()
        self.in_flight.clear()
        if self.telemetry is not None:
            self.telemetry.events.append("job_failed", error=str(error))
            self.telemetry.events.flush()
        self.status = JobStatus.FAILED

    def cancel(self) -> None:
        """Withdraw the job: drop its work and mark it CANCELLED.

        The scheduler tears down any backend-side workers first (via
        the backend's ``cancel_job`` hook); messages that were already
        in flight land as stray traffic and are counted, not applied.
        """
        self.finished_wall = time.monotonic()
        self.pending.clear()
        self.in_flight.clear()
        if self.telemetry is not None:
            self.telemetry.events.append("job_cancelled")
            self.telemetry.events.flush()
        self.status = JobStatus.CANCELLED

    def finalize(self, backend, scheduler_started: float) -> RunResult:
        """Save, merge and assemble this job's :class:`RunResult`.

        Mirrors the historical engine epilogue statement for statement
        (same clock samples, same event order) so single-job artifacts
        stay byte-identical.
        """
        collector = self.collector
        elapsed = time.monotonic() - scheduler_started
        collector.save(backend.clock(), elapsed=elapsed)
        merged = collector.merged()
        merged_statistics = collector.merged_statistics()
        if self.data is not None:
            finalize_session(self.data, self.state, merged,
                             statistics=merged_statistics)
            self.data.clear_processor_snapshots()
        estimates = merged.estimates() if merged.volume > 0 else None
        sla = (self.sla_snapshot(scheduler_started)
               if self.id is not None else None)
        if sla is not None and self.telemetry is not None:
            self.telemetry.events.append("job_sla", **sla)
        summary = (self.telemetry.finalize(
                       elapsed=elapsed, volume=collector.total_volume,
                       virtual_time=backend.virtual_time)
                   if self.telemetry is not None else None)
        self.result = RunResult(
            estimates=estimates,
            config=self.spec.config,
            per_rank_volumes=backend.per_rank_volumes(
                collector, tuple(self._assigned)),
            session_volume=backend.session_volume(collector),
            total_volume=collector.total_volume,
            elapsed=elapsed,
            virtual_time=backend.virtual_time,
            sessions=self.state.session_index,
            data_dir=self.data.root if self.data is not None else None,
            messages_received=collector.receive_count,
            saves_performed=collector.save_count,
            history=collector.history,
            telemetry=summary,
            recovered_ranks=tuple(self._recovered),
            statistics=merged_statistics,
            sla=sla)
        self.status = JobStatus.DONE
        return self.result

    # -- SLA ------------------------------------------------------------

    def sla_snapshot(self, base: float) -> dict:
        """The job's SLA record, clock stamps relative to ``base``.

        Keys: submit-to-start ``wait_seconds``, ``makespan_seconds``
        (submit to finish), the advisory ``deadline_seconds`` target
        and whether it was missed, dispatch accounting, and ``states``
        — the per-state lifecycle stamps (seconds relative to
        ``base``) recorded at each transition.
        """
        wait = (self.started_wall - self.submitted_wall
                if self.started_wall is not None
                and self.submitted_wall is not None else None)
        makespan = (self.finished_wall - self.submitted_wall
                    if self.finished_wall is not None
                    and self.submitted_wall is not None else None)
        deadline = self.spec.deadline
        missed = (deadline is not None
                  and (makespan is None or makespan > deadline))
        return {
            "job": self.id,
            "status": self.status,
            "priority": self.spec.priority,
            "submitted_at": (self.submitted_wall - base
                             if self.submitted_wall is not None else None),
            "started_at": (self.started_wall - base
                           if self.started_wall is not None else None),
            "finished_at": (self.finished_wall - base
                            if self.finished_wall is not None else None),
            "wait_seconds": wait,
            "makespan_seconds": makespan,
            "deadline_seconds": deadline,
            "deadline_missed": missed,
            "completed": self.completed,
            "dispatched": self.dispatched,
            "peak_workers": self.peak_workers,
            "recovered": len(self._recovered),
            "states": {state: stamp - base
                       for state, stamp in self.state_times.items()},
        }
