"""Sequential backend: M logical processors multiplexed on one thread.

The reference backend — bit-for-bit deterministic, no IPC, useful for
tests and for single-machine production runs.  Workers run one after
another; because every worker draws from its own RNG subsequence, the
merged estimate is *identical* to what the parallel backends produce for
the same configuration.
"""

from __future__ import annotations

import time

from repro.obs.telemetry import RunTelemetry, WorkerTelemetry
from repro.runtime.bootstrap import start_session
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.resume import finalize_session
from repro.runtime.result import RunResult
from repro.runtime.telemetry_support import open_run_telemetry
from repro.runtime.worker import RealizationRoutine, run_worker

__all__ = ["run_sequential"]


def run_sequential(routine: RealizationRoutine, config: RunConfig,
                   use_files: bool = True) -> RunResult:
    """Run one session on the sequential backend.

    Args:
        routine: User realization routine (``fn(rng)`` or ``fn()``).
        config: The run configuration.
        use_files: Write ``parmonc_data`` result files and save-points;
            disable for throwaway in-memory estimation.

    Returns:
        The session's :class:`~repro.runtime.result.RunResult`.
    """
    started = time.monotonic()
    data, state = start_session(config, use_files)
    telemetry: RunTelemetry | None = open_run_telemetry(
        config, data, backend="sequential", epoch=started)
    collector = Collector(config, state.base, data,
                          sessions=state.session_index,
                          telemetry=telemetry)
    deadline = (started + config.time_limit
                if config.time_limit is not None else None)
    per_rank: dict[int, int] = {}
    for rank in range(config.processors):
        worker_telemetry = (WorkerTelemetry(rank)
                            if telemetry is not None else None)
        if telemetry is not None:
            telemetry.events.append("worker_start", rank=rank,
                                    quota=config.worker_quota(rank))
        worker_started = time.monotonic()
        accumulator = run_worker(
            routine, config, rank, config.worker_quota(rank),
            send=lambda message: collector.receive(message,
                                                   time.monotonic()),
            deadline=deadline, telemetry=worker_telemetry)
        per_rank[rank] = accumulator.volume
        if telemetry is not None:
            telemetry.tracer.record("worker.run", worker_started,
                                    time.monotonic(), rank=rank,
                                    volume=accumulator.volume)
            telemetry.events.append(
                "worker_final", rank=rank, volume=accumulator.volume,
                messages=worker_telemetry.messages,
                bytes=worker_telemetry.bytes_sent)
        if deadline is not None and time.monotonic() >= deadline:
            break
    elapsed = time.monotonic() - started
    collector.save(time.monotonic(), elapsed=elapsed)
    merged = collector.merged()
    if data is not None:
        finalize_session(data, state, merged)
        data.clear_processor_snapshots()
    summary = (telemetry.finalize(elapsed=elapsed,
                                  volume=collector.total_volume)
               if telemetry is not None else None)
    return RunResult(
        estimates=merged.estimates(),
        config=config,
        per_rank_volumes=per_rank,
        session_volume=collector.session_volume,
        total_volume=collector.total_volume,
        elapsed=elapsed,
        sessions=state.session_index,
        data_dir=data.root if data is not None else None,
        messages_received=collector.receive_count,
        saves_performed=collector.save_count,
        history=collector.history,
        telemetry=summary)
