"""Sequential backend: M logical processors multiplexed on one thread.

The reference backend — bit-for-bit deterministic, no IPC, useful for
tests and for single-machine production runs.  Workers run one after
another; because every worker draws from its own RNG subsequence, the
merged estimate is *identical* to what the parallel backends produce for
the same configuration.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import replace

from repro.obs.telemetry import WorkerTelemetry
from repro.runtime.config import RunConfig
from repro.runtime.engine import (
    Engine,
    EngineBackend,
    WorkerAssignment,
    register_backend,
)
from repro.runtime.messages import MomentMessage
from repro.runtime.result import RunResult
from repro.runtime.worker import RealizationRoutine, run_worker

__all__ = ["SequentialBackend", "run_sequential"]


@register_backend("sequential")
class SequentialBackend(EngineBackend):
    """Run every worker inline, one after another, on this thread.

    Messages bypass :meth:`poll` entirely: the worker's ``send`` feeds
    :meth:`Engine.ingest` directly, so the collector sees each data
    pass the instant it is shipped and the hot loop pays no queueing.
    """

    name = "sequential"
    supports_shared_jobs = True

    def __init__(self) -> None:
        super().__init__()
        self._pending: deque[WorkerAssignment] = deque()

    def spawn(self, assignments) -> None:
        self._pending.extend(assignments)
        # A scheduler may hand out more work after the queue ran dry.
        self._done = False
        return None

    def cancel_job(self, job: str | None) -> None:
        """Drop a cancelled job's not-yet-run assignments."""
        self._pending = deque(assignment for assignment in self._pending
                              if assignment.job != job)

    def poll(self, timeout: float) -> MomentMessage | None:
        """Run the next queued worker to completion; always returns None."""
        if not self._pending:
            self._done = True
            return None
        assignment = self._pending.popleft()
        engine = self.engine
        job = assignment.job
        if job is None:
            routine, config = self.routine, self.config
            deadline = self.deadline
            telemetry = engine.telemetry
            send = (lambda message:
                    engine.ingest(message, time.monotonic()))
        else:
            context = engine.job_context(job)
            routine, config = context.routine, context.config
            deadline = context.deadline
            telemetry = context.telemetry
            send = (lambda message:
                    engine.ingest(replace(message, job=job),
                                  time.monotonic()))
        worker_telemetry = (WorkerTelemetry(assignment.rank)
                            if telemetry is not None else None)
        worker_started = time.monotonic()
        accumulator = run_worker(
            routine, config, assignment.rank, assignment.quota,
            send=send, deadline=deadline, telemetry=worker_telemetry)
        if telemetry is not None:
            telemetry.tracer.record("worker.run", worker_started,
                                    time.monotonic(), rank=assignment.rank,
                                    volume=accumulator.volume)
        if job is None and self.deadline is not None \
                and time.monotonic() >= self.deadline:
            # Job time limit: drop the not-yet-started workers, exactly
            # like the batch system would cancel the remaining ranks.
            # (Shared-mode jobs are expired by the scheduler instead.)
            self._pending.clear()
            self._done = True
        return None


def run_sequential(routine: RealizationRoutine, config: RunConfig,
                   use_files: bool = True) -> RunResult:
    """Run one session on the sequential backend.

    Args:
        routine: User realization routine (``fn(rng)`` or ``fn()``).
        config: The run configuration.
        use_files: Write ``parmonc_data`` result files and save-points;
            disable for throwaway in-memory estimation.

    Returns:
        The session's :class:`~repro.runtime.result.RunResult`.
    """
    return Engine(SequentialBackend(), config, use_files=use_files) \
        .run(routine)
