"""Glue between the backends and :mod:`repro.obs`.

One helper per concern so all three backends stay symmetric: open a
:class:`~repro.obs.telemetry.RunTelemetry` for a session (or None when
the run has telemetry off), pointed at ``parmonc_data/telemetry``
whenever the session writes files.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.obs.telemetry import RunTelemetry
from repro.runtime.config import RunConfig
from repro.runtime.files import DataDirectory

__all__ = ["open_run_telemetry"]


def open_run_telemetry(config: RunConfig, data: DataDirectory | None,
                       *, backend: str,
                       clock: Callable[[], float] = time.monotonic,
                       epoch: float | None = None
                       ) -> RunTelemetry | None:
    """Create the session's telemetry aggregator, or None when disabled.

    A fresh (``res=0``) file-backed session clears the previous run's
    telemetry artifacts, mirroring how the bootstrap clears stale
    save-points; resumed sessions append to the existing event log so
    the record spans the whole simulation.

    Args:
        config: The run configuration (its ``telemetry`` flag decides).
        data: The session's data directory, if it writes files.
        backend: Backend name stamped on the ``session_start`` event.
        clock: Run time source (virtual under simulation).
        epoch: Run-start clock value to subtract from every timestamp;
            defaults to ``clock()`` now for real clocks.  Virtual
            backends pass 0.0 explicitly.
    """
    if not config.telemetry:
        return None
    directory = data.telemetry_dir if data is not None else None
    if data is not None and config.res == 0:
        data.clear_telemetry()
    telemetry = RunTelemetry(clock=clock, directory=directory,
                             epoch=clock() if epoch is None else epoch)
    telemetry.events.append(
        "session_start", backend=backend, processors=config.processors,
        maxsv=config.maxsv, seqnum=config.seqnum, res=config.res,
        perpass=config.perpass, peraver=config.peraver,
        shape=list(config.shape))
    return telemetry
