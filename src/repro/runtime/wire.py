"""The distributed wire format: framed, checksummed, versioned messages.

Everything that crosses a TCP connection between a run (the
``distributed`` backend) and a ``parmonc-pool`` worker daemon is a
*frame*::

    +-------+---------+------+--------+-------+=============+
    | magic | version | kind | length | crc32 | JSON payload|
    | 4s    | u16     | u16  | u32    | u32   | length bytes|
    +-------+---------+------+--------+-------+=============+

* **magic** (``b"PMNC"``) rejects foreign traffic on the port early;
* **version** lets an old pool refuse a newer run (and vice versa)
  with a clear error instead of a JSON parse failure;
* **length** is the payload size in bytes (bounded, so a corrupt
  header cannot make a peer allocate gigabytes);
* **crc32** covers the payload, so truncated or bit-flipped frames
  are detected before anything is deserialized.

The payload is UTF-8 JSON.  Data frames carry the *existing*
:class:`~repro.runtime.messages.MomentMessage` payloads — the moment
snapshot via :meth:`~repro.stats.accumulator.MomentSnapshot.to_dict`
and the extra statistics via the same versioned
:meth:`~repro.stats.statistic.Statistic.to_payload` maps the
save-points use.  Python's JSON encoder emits shortest-round-trip
``repr`` floats, so every ``float64`` survives the wire bit-for-bit
and distributed estimates stay bit-identical to the other backends'.

Control frames (:class:`FrameKind`):

==============  =======================================================
``HELLO``       run -> pool: run configuration + realization routine
``WELCOME``     pool -> run: worker capacity, pool identity
``ASSIGN``      run -> pool: one :class:`WorkerAssignment` (rank/quota)
``DATA``        pool -> run: one ``MomentMessage`` data pass
``EXIT``        pool -> run: a worker process exited (after its queued
                data frames were flushed — drain-before-verdict)
``HEARTBEAT``   both ways: liveness + pool occupancy
``BYE``         run -> pool: session over, release the workers
``ERROR``       either way: human-readable fatal protocol error
``SUBMIT``      run -> pool: declare one job (config + routine)
                mid-session — streaming-scheduler sessions only
``CANCEL``      run -> pool: terminate a job's workers mid-session —
                streaming-scheduler sessions only
==============  =======================================================

``SUBMIT`` and ``CANCEL`` extend wire version 1 *additively*: a classic
single-job or sealed-batch session never emits them (its jobs all
travel in the HELLO), so those sessions stay byte-identical on the
wire.  Only a streaming scheduler (``parmonc-sched --serve``) opens a
session that declares ``"streaming": true`` in its HELLO and then
announces jobs as they are admitted.
"""

from __future__ import annotations

import asyncio
import base64
import enum
import json
import pickle
import struct
import zlib
from typing import Callable, Iterator

from repro.exceptions import ConfigurationError, WireError
from repro.rng.multiplier import LeapSet
from repro.runtime.config import RunConfig
from repro.runtime.messages import MomentMessage
from repro.stats.accumulator import MomentSnapshot
from repro.stats.statistic import payload_map, statistics_from_payload_map

__all__ = [
    "FrameKind",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "config_from_payload",
    "config_to_payload",
    "decode_frame",
    "encode_frame",
    "message_from_payload",
    "message_to_payload",
    "read_frame",
    "routine_from_payload",
    "routine_to_payload",
    "write_frame",
]

#: Protocol magic; the first four bytes of every frame.
MAGIC = b"PMNC"

#: Current protocol version.  Bump on any incompatible change to the
#: header, the frame kinds or the payload schemas.
WIRE_VERSION = 1

#: Upper bound on a single frame's payload, so a corrupt length field
#: can never make a peer buffer an absurd allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct("!4sHHII")


class FrameKind(enum.IntEnum):
    """The frame types of the distributed protocol."""

    HELLO = 1
    WELCOME = 2
    ASSIGN = 3
    DATA = 4
    EXIT = 5
    HEARTBEAT = 6
    BYE = 7
    ERROR = 8
    #: Mid-session job declaration (streaming sessions only; a sealed
    #: session's jobs all travel in the HELLO, keeping it byte-
    #: identical to historical version-1 traffic).
    SUBMIT = 9
    #: Mid-session job withdrawal (streaming sessions only).
    CANCEL = 10


def encode_frame(kind: FrameKind, payload: dict) -> bytes:
    """Serialize one frame: header (magic/version/kind/length/crc) + JSON."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit")
    header = _HEADER.pack(MAGIC, WIRE_VERSION, int(kind), len(body),
                          zlib.crc32(body))
    return header + body


def _parse_header(header: bytes) -> tuple[FrameKind, int, int]:
    """Validate a frame header; return ``(kind, length, crc32)``."""
    magic, version, kind, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(
            f"bad frame magic {magic!r}; the peer is not speaking the "
            f"parmonc wire protocol")
    if version != WIRE_VERSION:
        raise WireError(
            f"peer speaks wire protocol version {version}, this library "
            f"speaks {WIRE_VERSION}; upgrade the older side")
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"frame announces {length} payload bytes, over the "
            f"{MAX_FRAME_BYTES}-byte limit (corrupt stream?)")
    try:
        return FrameKind(kind), length, crc
    except ValueError:
        raise WireError(f"unknown frame kind {kind}") from None


def _parse_body(kind: FrameKind, body: bytes, crc: int) -> dict:
    if zlib.crc32(body) != crc:
        raise WireError(
            f"{kind.name} frame failed its checksum "
            f"({len(body)} payload bytes)")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(
            f"{kind.name} frame carries malformed JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireError(
            f"{kind.name} frame payload must be an object, got "
            f"{type(payload).__name__}")
    return payload


def decode_frame(data: bytes) -> tuple[FrameKind, dict]:
    """Decode exactly one complete frame from ``data``."""
    frames = list(FrameDecoder().feed(data))
    if len(frames) != 1:
        raise WireError(
            f"expected exactly one complete frame, got {len(frames)}")
    return frames[0]


class FrameDecoder:
    """Incremental decoder for a byte stream of concatenated frames.

    Feed it arbitrary chunks (a socket read boundary never aligns with
    frames) and iterate the complete frames decoded so far; partial
    trailing bytes are buffered for the next feed.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet decodable into a full frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> Iterator[tuple[FrameKind, dict]]:
        """Absorb ``data``; yield every frame it completes, in order."""
        self._buffer.extend(data)
        while len(self._buffer) >= _HEADER.size:
            kind, length, crc = _parse_header(
                bytes(self._buffer[:_HEADER.size]))
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return
            body = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            yield kind, _parse_body(kind, body, crc)


async def read_frame(reader: asyncio.StreamReader) -> tuple[FrameKind, dict]:
    """Read one complete frame from an asyncio stream.

    Raises:
        WireError: On a malformed header, checksum failure or version
            mismatch.
        asyncio.IncompleteReadError: When the peer closes mid-frame.
    """
    header = await reader.readexactly(_HEADER.size)
    kind, length, crc = _parse_header(header)
    body = await reader.readexactly(length) if length else b""
    return kind, _parse_body(kind, body, crc)


def write_frame(writer: asyncio.StreamWriter, kind: FrameKind,
                payload: dict) -> None:
    """Queue one frame on an asyncio stream (transport-buffered)."""
    writer.write(encode_frame(kind, payload))


# ---------------------------------------------------------------------------
# Payload codecs


def message_to_payload(message: MomentMessage) -> dict:
    """Serialize a worker data pass for a DATA frame.

    The moment snapshot and every extra statistic use exactly the JSON
    forms the save-points persist, so the wire carries the same bytes
    the storage layer would — one schema, everywhere.
    """
    payload: dict = {
        "rank": message.rank,
        "sent_at": message.sent_at,
        "final": message.final,
        "snapshot": message.snapshot.to_dict(),
    }
    if message.metrics is not None:
        payload["metrics"] = message.metrics
    if message.statistics is not None:
        payload["statistics"] = payload_map(message.statistics)
    if message.job is not None:
        # Only multi-job (scheduler) sessions tag their passes; classic
        # single-run frames stay byte-identical to wire version 1 peers.
        payload["job"] = message.job
    return payload


def message_from_payload(payload: dict) -> MomentMessage:
    """Rebuild a :class:`MomentMessage` from a DATA frame payload."""
    try:
        snapshot = MomentSnapshot.from_dict(payload["snapshot"])
        statistics = None
        if "statistics" in payload:
            statistics, unknown = statistics_from_payload_map(
                payload["statistics"])
            if unknown:
                raise WireError(
                    f"data frame carries unregistered statistic kinds "
                    f"{unknown}; register them on the collector side")
        job = payload.get("job")
        return MomentMessage(
            rank=int(payload["rank"]),
            snapshot=snapshot,
            sent_at=float(payload["sent_at"]),
            final=bool(payload["final"]),
            metrics=payload.get("metrics"),
            statistics=statistics,
            job=None if job is None else str(job))
    except WireError:
        raise
    except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
        raise WireError(f"malformed data frame payload: {exc}") from exc


def config_to_payload(config: RunConfig) -> dict:
    """The slice of a :class:`RunConfig` a pool worker needs.

    Only the fields :func:`~repro.runtime.worker.run_worker` consumes
    travel: the realization shape, the stream coordinates (seqnum +
    leap exponents), the pass period, the statistics selection and the
    telemetry flag.  File- and collector-side settings stay home.
    """
    return {
        "nrow": config.nrow,
        "ncol": config.ncol,
        "seqnum": config.seqnum,
        "perpass": config.perpass,
        "statistics": list(config.statistics),
        "telemetry": config.telemetry,
        "leaps": {
            "experiment_exponent": config.leaps.experiment_exponent,
            "processor_exponent": config.leaps.processor_exponent,
            "realization_exponent": config.leaps.realization_exponent,
        },
    }


def config_from_payload(payload: dict) -> RunConfig:
    """Rebuild the worker-side :class:`RunConfig` from a HELLO frame."""
    try:
        leaps = payload["leaps"]
        return RunConfig(
            nrow=int(payload["nrow"]),
            ncol=int(payload["ncol"]),
            maxsv=1,  # unused by run_worker; quotas arrive per ASSIGN
            seqnum=int(payload["seqnum"]),
            perpass=float(payload["perpass"]),
            statistics=tuple(payload["statistics"]),
            telemetry=bool(payload["telemetry"]),
            leaps=LeapSet(
                experiment_exponent=int(leaps["experiment_exponent"]),
                processor_exponent=int(leaps["processor_exponent"]),
                realization_exponent=int(leaps["realization_exponent"])))
    except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
        raise WireError(f"malformed hello configuration: {exc}") from exc


def routine_to_payload(routine, spec: str | None = None) -> dict:
    """Serialize the realization routine for a HELLO frame.

    With ``spec`` (a ``module:function`` string, the CLI path) the pool
    imports the routine itself — nothing executable crosses the wire.
    Without one the routine is pickled, which works for module-level
    functions (pickle ships an import reference, so the module must be
    importable on the pool host — the shared-filesystem assumption MPI
    deployments make anyway).
    """
    if spec is not None:
        return {"spec": spec}
    try:
        blob = pickle.dumps(routine)
    except Exception as exc:
        raise ConfigurationError(
            f"the distributed backend cannot pickle the realization "
            f"routine ({exc}); move it to module level, or run through "
            f"parmonc-run so pools import it by name") from exc
    return {"pickle": base64.b64encode(blob).decode("ascii")}


def routine_from_payload(payload: dict,
                         importer: Callable[[str], object]):
    """Resolve a HELLO routine payload on the pool side.

    Args:
        payload: The ``routine`` object of a HELLO frame.
        importer: ``module:function`` resolver used for spec payloads
            (the pool passes :func:`repro.cli.run.load_routine`).
    """
    if not isinstance(payload, dict):
        raise WireError("hello frame carries no routine object")
    if "spec" in payload:
        try:
            return importer(payload["spec"])
        except Exception as exc:
            raise WireError(
                f"pool cannot import routine {payload['spec']!r}: "
                f"{exc}") from exc
    if "pickle" in payload:
        try:
            return pickle.loads(base64.b64decode(payload["pickle"]))
        except Exception as exc:
            raise WireError(
                f"pool cannot unpickle the realization routine: {exc}; "
                f"is its module importable on this host?") from exc
    raise WireError("hello routine payload carries neither spec nor pickle")
