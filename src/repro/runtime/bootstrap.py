"""Session bootstrap shared by every backend.

Handles the file-system side of starting a session: creating (or not)
the data directory, clearing stale state on a fresh run, loading the
resume base on ``res=1``, and registering the experiment.
"""

from __future__ import annotations

import logging

from repro.exceptions import ResumeError
from repro.runtime.config import RunConfig
from repro.runtime.files import DataDirectory
from repro.runtime.resume import ResumeState, prepare_resume

__all__ = ["start_session"]

_logger = logging.getLogger(__name__)


def start_session(config: RunConfig, use_files: bool = True
                  ) -> tuple[DataDirectory | None, ResumeState]:
    """Prepare the data directory and resume state for one session.

    Args:
        config: The run configuration.
        use_files: When False the session runs purely in memory; only
            valid for fresh runs (``res=0``), since resuming needs the
            previous session's save-point.

    Returns:
        ``(data, state)`` where ``data`` is None for in-memory runs.
    """
    if not use_files:
        if config.res != 0:
            raise ResumeError(
                "res=1 requires result files; in-memory sessions cannot "
                "resume a previous simulation")
        return None, prepare_resume(config, DataDirectory(config.workdir),
                                    carry_history=False)
    data = DataDirectory(config.workdir).ensure()
    data.sweep_temp_files()
    # prepare_resume runs first even on res=0: it reads the burnt-seqnum
    # history out of any existing save-point before that save-point is
    # discarded below.
    state = prepare_resume(config, data)
    if config.res == 0:
        # "In case of a new simulation the parmonc creates brand new
        # files with results" — drop anything a previous run left behind.
        if data.savepoint_path.exists():
            data.savepoint_path.unlink()
        data.clear_processor_snapshots()
    data.register_experiment(seqnum=config.seqnum,
                             processors=config.processors,
                             maxsv=config.maxsv, res=config.res)
    _logger.info(
        "session %d started: seqnum=%d, M=%d, maxsv=%d, res=%d, "
        "base volume=%d", state.session_index, config.seqnum,
        config.processors, config.maxsv, config.res, state.base.volume)
    return data, state
