"""The per-processor simulation loop.

A worker owns one "processors" subsequence of the RNG hierarchy.  For
its ``r``-th realization it positions a fresh generator at realization
substream ``r``, runs the user routine, accumulates the returned matrix,
and every ``perpass`` seconds ships its cumulative moments to the
collector.  ``perpass = 0`` reproduces the paper's strictest performance
test: a data pass after *every* realization.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable

from repro.exceptions import ConfigurationError, RealizationError
from repro.obs.telemetry import WorkerTelemetry
from repro.rng import install_rnd128
from repro.rng.lcg128 import Lcg128
from repro.rng.streams import StreamTree
from repro.runtime.config import RunConfig
from repro.runtime.messages import MomentMessage, message_bytes
from repro.stats.accumulator import MomentAccumulator

__all__ = ["RealizationRoutine", "adapt_realization", "run_worker"]

#: A realization routine: either ``fn(rng) -> matrix`` or, PARMONC-style,
#: ``fn() -> matrix`` drawing from the global :func:`repro.rng.rnd128`.
RealizationRoutine = Callable


def adapt_realization(routine: RealizationRoutine
                      ) -> Callable[[Lcg128], object]:
    """Normalize a user routine to the ``fn(rng) -> matrix`` convention.

    Zero-argument routines are wrapped so that the supplied generator is
    installed behind the global :func:`repro.rng.rnd128` before each
    call — the direct analogue of the C API, where the user routine
    calls ``rnd128()`` with no arguments.
    """
    if not callable(routine):
        raise ConfigurationError(
            f"realization routine must be callable, got "
            f"{type(routine).__name__}")
    try:
        parameters = [
            p for p in inspect.signature(routine).parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
            and p.default is p.empty]
        n_required = len(parameters)
    except (TypeError, ValueError):
        # Builtins and some callables hide their signature; assume the
        # modern one-argument convention.
        n_required = 1
    if n_required == 0:
        def zero_arg_adapter(rng: Lcg128):
            install_rnd128(rng)
            return routine()
        return zero_arg_adapter
    if n_required == 1:
        return routine
    raise ConfigurationError(
        f"realization routine must take 0 arguments (global rnd128 "
        f"style) or 1 argument (the generator); "
        f"{getattr(routine, '__name__', routine)!r} requires {n_required}")


def run_worker(routine: RealizationRoutine, config: RunConfig, rank: int,
               quota: int, send: Callable[[MomentMessage], None],
               clock: Callable[[], float] = time.monotonic,
               deadline: float | None = None,
               telemetry: WorkerTelemetry | None = None
               ) -> MomentAccumulator:
    """Simulate ``quota`` realizations on processor ``rank``.

    Args:
        routine: The user realization routine.
        config: Run configuration (seqnum, perpass, shape, leaps).
        rank: This worker's processor index.
        quota: Number of realizations to simulate.
        send: Callback delivering a :class:`MomentMessage` to the
            collector (a queue put, an in-process call, ...).
        clock: Monotonic time source in seconds; swapped for a virtual
            clock under simulation.
        deadline: Optional absolute clock value after which the worker
            stops early (the job time limit).
        telemetry: Optional per-worker stats; when given, every data
            pass carries its cumulative dict to rank 0 on the message's
            ``metrics`` field.  None (the default) leaves the loop
            untouched.

    Returns:
        The worker's final accumulator (also shipped via ``send`` with
        ``final=True``).
    """
    if quota < 0:
        raise ConfigurationError(f"quota must be >= 0, got {quota}")
    adapted = adapt_realization(routine)
    stream = StreamTree(config.leaps).experiment(config.seqnum) \
                                     .processor(rank)
    accumulator = MomentAccumulator(config.nrow, config.ncol)
    nbytes = message_bytes(config.nrow, config.ncol)

    def ship(sent_at: float, final: bool) -> None:
        metrics = None
        if telemetry is not None:
            telemetry.message(nbytes)
            metrics = telemetry.as_dict(now=sent_at)
        send(MomentMessage(rank=rank, snapshot=accumulator.snapshot(),
                           sent_at=sent_at, final=final, metrics=metrics))

    last_send = clock()
    for index in range(quota):
        rng = stream.realization(index)
        started = clock()
        try:
            result = adapted(rng)
        except Exception as exc:
            raise RealizationError(
                f"realization routine failed at experiment="
                f"{config.seqnum} processor={rank} realization={index}: "
                f"{exc}", experiment=config.seqnum, processor=rank,
                realization=index) from exc
        finished = clock()
        accumulator.add(result, compute_time=finished - started)
        if telemetry is not None:
            telemetry.realization(finished - started)
        if config.perpass == 0.0 or finished - last_send >= config.perpass:
            ship(finished, final=False)
            last_send = finished
        if deadline is not None and finished >= deadline:
            break
    ship(clock(), final=True)
    return accumulator
