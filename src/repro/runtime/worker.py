"""The per-processor simulation loop.

A worker owns one "processors" subsequence of the RNG hierarchy.  For
its ``r``-th realization it positions a fresh generator at realization
substream ``r``, runs the user routine, accumulates the returned matrix,
and every ``perpass`` seconds ships its cumulative statistics to the
collector.  ``perpass = 0`` reproduces the paper's strictest performance
test: a data pass after *every* realization.

The worker accumulates the run's declared
:class:`~repro.stats.statistic.StatisticSet`: always the moment pair,
plus any extra mergeable statistics from ``config.statistics``
(covariance, histogram, ...), whose frozen snapshots ride each data
pass on the message's ``statistics`` field.  A moments-only run takes
exactly the historical code path.

Routines carrying a ``batch_size`` attribute (see :func:`batch_routine`
and :func:`make_batched`) take the batched fast path instead: the worker
places a whole block of realization substreams at once
(:meth:`~repro.rng.streams.ProcessorStream.realization_block`), calls
the routine once per block, and folds the returned ``(B, nrow, ncol)``
stack with one :meth:`~repro.stats.accumulator.MomentAccumulator
.add_batch`.  Estimates are bit-identical to the scalar loop's.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ConfigurationError, RealizationError
from repro.obs.telemetry import WorkerTelemetry
from repro.rng import install_rnd128
from repro.rng.batch import BatchStreams
from repro.rng.lcg128 import Lcg128
from repro.rng.streams import StreamTree
from repro.runtime.config import RunConfig
from repro.runtime.messages import MomentMessage, message_bytes
from repro.stats.accumulator import MomentAccumulator
from repro.stats.statistic import StatisticSet

__all__ = ["RealizationRoutine", "BatchRealizationRoutine",
           "adapt_realization", "batch_routine", "make_batched",
           "run_worker"]

#: A realization routine: either ``fn(rng) -> matrix`` or, PARMONC-style,
#: ``fn() -> matrix`` drawing from the global :func:`repro.rng.rnd128`.
RealizationRoutine = Callable


@runtime_checkable
class BatchRealizationRoutine(Protocol):
    """A routine simulating ``B`` realizations per call.

    Receives a :class:`~repro.rng.batch.BatchStreams` of ``B`` disjoint
    substreams and returns a ``(B, nrow, ncol)`` array (a length-``B``
    vector for 1x1 problems); ``batch_size`` is the preferred block
    width — the worker may call with fewer streams on the final block.
    """

    batch_size: int

    def __call__(self, streams: BatchStreams) -> object: ...


def _check_batch_size(batch_size: object) -> int:
    if not isinstance(batch_size, int) or isinstance(batch_size, bool) \
            or batch_size < 1:
        raise ConfigurationError(
            f"batch_size must be a positive integer, got {batch_size!r}")
    return batch_size


def batch_routine(batch_size: int) -> Callable[[Callable], Callable]:
    """Decorator marking ``fn(streams) -> (B, nrow, ncol)`` as batched.

    Example:
        >>> @batch_routine(512)
        ... def kernel(streams):
        ...     return streams.uniforms(1)[:, 0]
        >>> kernel.batch_size
        512
    """
    _check_batch_size(batch_size)

    def mark(fn: Callable) -> Callable:
        if not callable(fn):
            raise ConfigurationError(
                f"batch routine must be callable, got "
                f"{type(fn).__name__}")
        fn.batch_size = batch_size
        return fn
    return mark


class _BatchedRoutine:
    """Picklable scalar-to-batched adapter (see :func:`make_batched`).

    A class, not a closure, so a batched wrapper built on one host can
    cross a multiprocessing "spawn" boundary or the distributed
    backend's HELLO pickle — only the wrapped routine itself must be
    picklable (a module-level function is).
    """

    def __init__(self, routine: RealizationRoutine,
                 batch_size: int) -> None:
        self._routine = routine
        self._adapted = adapt_realization(routine)
        self.batch_size = batch_size
        self.__name__ = (
            f"batched_{getattr(routine, '__name__', 'realization')}")

    def __call__(self, streams: BatchStreams):
        return np.stack([
            np.atleast_2d(np.asarray(
                self._adapted(rng), dtype=np.float64))
            for rng in streams.generators()])


def make_batched(routine: RealizationRoutine,
                 batch_size: int) -> BatchRealizationRoutine:
    """Wrap a scalar realization routine for the batched worker loop.

    The adapter peels the block apart again — it calls the scalar
    routine once per stream via :meth:`~repro.rng.batch.BatchStreams
    .generators` — so it does not vectorize the simulation itself, but
    it does buy the block-placement and batch-accumulation savings, and
    its results are bit-identical to the scalar loop's.
    """
    _check_batch_size(batch_size)
    if getattr(routine, "batch_size", None) is not None:
        raise ConfigurationError(
            "routine is already batched; make_batched only wraps scalar "
            "realization routines")
    return _BatchedRoutine(routine, batch_size)


class _ZeroArgAdapter:
    """Picklable wrapper for PARMONC-style ``fn() -> matrix`` routines.

    Installs the supplied generator behind the global
    :func:`repro.rng.rnd128` before each call — the direct analogue of
    the C API, where the user routine calls ``rnd128()`` with no
    arguments.  A class rather than a closure so adapted routines can
    cross process and wire boundaries.
    """

    def __init__(self, routine: RealizationRoutine) -> None:
        self._routine = routine
        self.__name__ = getattr(routine, "__name__", "realization")

    def __call__(self, rng: Lcg128):
        install_rnd128(rng)
        return self._routine()


def adapt_realization(routine: RealizationRoutine) -> Callable:
    """Normalize a user routine to the ``fn(rng) -> matrix`` convention.

    Zero-argument routines are wrapped so that the supplied generator is
    installed behind the global :func:`repro.rng.rnd128` before each
    call — the direct analogue of the C API, where the user routine
    calls ``rnd128()`` with no arguments.

    Routines carrying a ``batch_size`` attribute are validated and
    passed through unchanged; the worker detects the attribute and runs
    the batched loop instead of the scalar one.
    """
    if not callable(routine):
        raise ConfigurationError(
            f"realization routine must be callable, got "
            f"{type(routine).__name__}")
    try:
        parameters = [
            p for p in inspect.signature(routine).parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
            and p.default is p.empty]
        n_required = len(parameters)
    except (TypeError, ValueError):
        # Builtins and some callables hide their signature; assume the
        # modern one-argument convention.
        n_required = 1
    if getattr(routine, "batch_size", None) is not None:
        _check_batch_size(routine.batch_size)
        if n_required != 1:
            raise ConfigurationError(
                f"batch realization routine must take exactly 1 argument "
                f"(the stream block); "
                f"{getattr(routine, '__name__', routine)!r} requires "
                f"{n_required}")
        return routine
    if n_required == 0:
        return _ZeroArgAdapter(routine)
    if n_required == 1:
        return routine
    raise ConfigurationError(
        f"realization routine must take 0 arguments (global rnd128 "
        f"style) or 1 argument (the generator); "
        f"{getattr(routine, '__name__', routine)!r} requires {n_required}")


def run_worker(routine: RealizationRoutine, config: RunConfig, rank: int,
               quota: int, send: Callable[[MomentMessage], None],
               clock: Callable[[], float] = time.monotonic,
               deadline: float | None = None,
               telemetry: WorkerTelemetry | None = None
               ) -> MomentAccumulator:
    """Simulate ``quota`` realizations on processor ``rank``.

    Args:
        routine: The user realization routine; one with a ``batch_size``
            attribute takes the batched fast path.
        config: Run configuration (seqnum, perpass, shape, leaps).
        rank: This worker's processor index.
        quota: Number of realizations to simulate.
        send: Callback delivering a :class:`MomentMessage` to the
            collector (a queue put, an in-process call, ...).
        clock: Monotonic time source in seconds; swapped for a virtual
            clock under simulation.
        deadline: Optional absolute clock value after which the worker
            stops early (the job time limit).
        telemetry: Optional per-worker stats; when given, every data
            pass carries its cumulative dict to rank 0 on the message's
            ``metrics`` field.  None (the default) leaves the loop
            untouched.

    Returns:
        The worker's final accumulator (also shipped via ``send`` with
        ``final=True``).
    """
    if quota < 0:
        raise ConfigurationError(f"quota must be >= 0, got {quota}")
    adapted = adapt_realization(routine)
    stream = StreamTree(config.leaps).experiment(config.seqnum) \
                                     .processor(rank)
    statistics = StatisticSet.for_run(config.statistics, config.nrow,
                                      config.ncol)
    accumulator = statistics.moments
    nbytes = message_bytes(config.nrow, config.ncol, statistics.extras)

    def ship(sent_at: float, final: bool) -> None:
        metrics = None
        if telemetry is not None:
            telemetry.message(nbytes)
            metrics = telemetry.as_dict(now=sent_at)
        send(MomentMessage(rank=rank, snapshot=accumulator.snapshot(),
                           sent_at=sent_at, final=final, metrics=metrics,
                           statistics=statistics.extras_snapshot()))

    batch_size = getattr(adapted, "batch_size", None)
    last_send = clock()
    if batch_size is not None:
        index = 0
        while index < quota:
            width = min(batch_size, quota - index)
            streams = stream.realization_block(index, width)
            started = clock()
            try:
                results = adapted(streams)
            except Exception as exc:
                raise RealizationError(
                    f"batch realization routine failed at experiment="
                    f"{config.seqnum} processor={rank} realizations="
                    f"{index}..{index + width - 1}: {exc}",
                    experiment=config.seqnum, processor=rank,
                    realization=index) from exc
            finished = clock()
            shape = np.shape(results)
            if not shape or shape[0] != width:
                returned = f"shape {shape}" if shape else "a scalar"
                raise RealizationError(
                    f"batch realization routine returned {returned} "
                    f"for a block of {width} streams at "
                    f"experiment={config.seqnum} processor={rank}",
                    experiment=config.seqnum, processor=rank,
                    realization=index)
            statistics.update_batch(results,
                                    compute_time=finished - started)
            if telemetry is not None:
                telemetry.batch(width, finished - started)
            index += width
            if config.perpass == 0.0 \
                    or finished - last_send >= config.perpass:
                ship(finished, final=False)
                last_send = finished
            if deadline is not None and finished >= deadline:
                break
        ship(clock(), final=True)
        return accumulator
    for index in range(quota):
        rng = stream.realization(index)
        started = clock()
        try:
            result = adapted(rng)
        except Exception as exc:
            raise RealizationError(
                f"realization routine failed at experiment="
                f"{config.seqnum} processor={rank} realization={index}: "
                f"{exc}", experiment=config.seqnum, processor=rank,
                realization=index) from exc
        finished = clock()
        statistics.update(result, compute_time=finished - started)
        if telemetry is not None:
            telemetry.realization(finished - started)
        if config.perpass == 0.0 or finished - last_send >= config.perpass:
            ship(finished, final=False)
            last_send = finished
        if deadline is not None and finished >= deadline:
            break
    ship(clock(), final=True)
    return accumulator
