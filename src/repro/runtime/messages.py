"""Worker-to-collector messages and their cost model.

Workers ship *cumulative* statistic snapshots: each message carries the
entire summary the worker has accumulated so far — always the moment
pair ``(sum1, sum2, l_m)``, plus whatever extra
:class:`~repro.stats.statistic.Statistic` payloads the run declared.
The collector keeps the latest snapshot per rank, so a lost or
reordered message costs freshness but never correctness — the same
robustness the asynchronous PARMONC exchange relies on.

The wire-size model is derived from the statistics actually on the
message, not from an assumed moment-only shape: every statistic
reports its own ``nbytes`` and the message adds a fixed framing
header.  For the default moments-only configuration this reproduces
the paper's Fig. 2 accounting exactly (eight 8-byte words per matrix
entry; 128,064 bytes for the 1000 x 2 performance test — the reported
"approximately 120 Kbytes" per pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import ConfigurationError
from repro.stats.accumulator import MOMENT_WORDS_PER_ENTRY, MomentSnapshot
from repro.stats.statistic import Statistic

__all__ = ["CombinedMessage", "MomentMessage", "message_bytes"]

#: Fixed per-message framing overhead assumed by the cost model (rank,
#: volume, timestamps, envelope).
_HEADER_BYTES = 64


@dataclass(frozen=True)
class MomentMessage:
    """One data pass from a worker to the collector (0-th processor).

    Attributes:
        rank: Sending processor index ``m``.
        snapshot: Cumulative moments ``(sum1_m, sum2_m, l_m)``.
        sent_at: Send time in run seconds (virtual under simulation).
        final: True for the worker's last message; the collector uses
            this to detect run completion.
        metrics: Optional worker telemetry piggybacking on the data
            pass — the plain dict of
            :meth:`repro.obs.telemetry.WorkerTelemetry.as_dict`.  Like
            the moment snapshot it is cumulative, so the collector
            keeps the latest per rank and loses nothing to reordering.
        statistics: Extra cumulative statistics riding the pass, keyed
            by kind (``None`` — not an empty mapping — for the default
            moments-only run, keeping its messages byte-identical to
            the historical format).  Each value is a frozen
            :class:`~repro.stats.statistic.Statistic` snapshot with
            the same latest-per-rank semantics as the moments.
        job: Identifier of the owning :class:`~repro.runtime.job.Job`
            when the message travels through a multi-job
            :class:`~repro.runtime.scheduler.Scheduler`; ``None`` on
            the classic single-run path, keeping those messages
            byte-identical to the historical format.
    """

    rank: int
    snapshot: MomentSnapshot
    sent_at: float
    final: bool = False
    metrics: dict | None = None
    statistics: Mapping[str, Statistic] | None = field(default=None)
    job: str | None = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(
                f"message rank must be >= 0, got {self.rank}")
        if self.sent_at < 0.0:
            raise ConfigurationError(
                f"message send time must be >= 0, got {self.sent_at}")

    @property
    def nbytes(self) -> int:
        """Modelled wire size, derived from the payloads on board."""
        extras = (self.statistics.values()
                  if self.statistics is not None else ())
        return (_HEADER_BYTES + self.snapshot.nbytes
                + sum(statistic.nbytes for statistic in extras))


@dataclass(frozen=True)
class CombinedMessage:
    """One coalesced upstream pass from an interior reducer node.

    A reducer (see :mod:`repro.runtime.reduction`) drains everything
    its subtree delivered since its last forward, keeps the latest
    cumulative snapshot per rank, and ships them together as one
    message.  Crucially the entries stay *per-rank* — the reducer never
    pre-sums float payloads — so the collector still performs the one
    canonical rank-ordered merge and the estimates are bit-identical
    to the flat exchange by construction (float addition is not
    associative to the last ulp; only the topology changed, not the
    fold).  What the tree buys is message-count coalescing: the
    collector pays its fixed per-message overhead once per combined
    message instead of once per worker pass.

    Attributes:
        node_id: Identifier of the forwarding reducer node.
        entries: Latest-per-rank worker messages, one per distinct
            rank, in ascending rank order.
        sent_at: Forward time in run seconds.
        metrics: Optional reducer-side telemetry (level, messages
            drained/forwarded, shm reads) aggregated by the collector.
        job: Identifier of the owning job when the reducer serves a
            job-scoped tree (every entry then carries the same job);
            ``None`` for a run-wide tree, keeping the classic combined
            messages byte-identical to the historical format.
    """

    node_id: str
    entries: tuple[MomentMessage, ...]
    sent_at: float
    metrics: dict | None = None
    job: str | None = None

    def __post_init__(self) -> None:
        if not self.entries:
            raise ConfigurationError(
                "a combined message must carry at least one entry")
        ranks = [entry.rank for entry in self.entries]
        if len(set(ranks)) != len(ranks) or ranks != sorted(ranks):
            raise ConfigurationError(
                f"combined entries must be unique and rank-ordered, "
                f"got ranks {ranks}")
        if self.sent_at < 0.0:
            raise ConfigurationError(
                f"message send time must be >= 0, got {self.sent_at}")

    @property
    def ranks(self) -> tuple[int, ...]:
        """The distinct worker ranks on board, ascending."""
        return tuple(entry.rank for entry in self.entries)

    @property
    def final(self) -> bool:
        """True when any entry is a worker's final pass."""
        return any(entry.final for entry in self.entries)

    @property
    def nbytes(self) -> int:
        """Modelled wire size: one framing header plus the payloads.

        The combined message re-frames its entries under a single
        envelope, so coalescing k passes saves ``(k - 1)`` headers of
        fixed overhead on the wire and — far more importantly —
        ``(k - 1)`` fixed service costs at the collector.
        """
        return _HEADER_BYTES + sum(
            entry.nbytes - _HEADER_BYTES for entry in self.entries)


def message_bytes(nrow: int, ncol: int,
                  statistics: Iterable[Statistic] = ()) -> int:
    """Modelled size of one data pass for an ``nrow x ncol`` problem.

    The moment payload charges eight 8-byte words per matrix entry
    (the two moment matrices plus the derived mean/error/variance set
    the original library ships); each extra statistic contributes its
    own ``nbytes``.  With no extras this gives ``64 * nrow * ncol +
    64`` — 128,064 bytes for the paper's 1000 x 2 performance test,
    matching the reported "approximately 120 Kbytes" per pass.

    Args:
        nrow: Rows of the realization matrix.
        ncol: Columns of the realization matrix.
        statistics: Extra :class:`Statistic` payloads riding each
            pass (the non-moment members of the run's set).
    """
    if nrow < 1 or ncol < 1:
        raise ConfigurationError(
            f"matrix dimensions must be >= 1, got {nrow}x{ncol}")
    return (8 * MOMENT_WORDS_PER_ENTRY * nrow * ncol + _HEADER_BYTES
            + sum(statistic.nbytes for statistic in statistics))
