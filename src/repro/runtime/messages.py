"""Worker-to-collector messages and their cost model.

Workers ship *cumulative* moment snapshots: each message carries the
entire ``(sum1, sum2, l_m)`` the worker has accumulated so far.  The
collector keeps the latest snapshot per rank, so a lost or reordered
message costs freshness but never correctness — the same robustness the
asynchronous PARMONC exchange relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.stats.accumulator import MomentSnapshot

__all__ = ["MomentMessage", "message_bytes"]

#: Fixed per-message framing overhead assumed by the cost model (rank,
#: volume, timestamps, envelope).
_HEADER_BYTES = 64


@dataclass(frozen=True)
class MomentMessage:
    """One data pass from a worker to the collector (0-th processor).

    Attributes:
        rank: Sending processor index ``m``.
        snapshot: Cumulative moments ``(sum1_m, sum2_m, l_m)``.
        sent_at: Send time in run seconds (virtual under simulation).
        final: True for the worker's last message; the collector uses
            this to detect run completion.
        metrics: Optional worker telemetry piggybacking on the data
            pass — the plain dict of
            :meth:`repro.obs.telemetry.WorkerTelemetry.as_dict`.  Like
            the moment snapshot it is cumulative, so the collector
            keeps the latest per rank and loses nothing to reordering.
    """

    rank: int
    snapshot: MomentSnapshot
    sent_at: float
    final: bool = False
    metrics: dict | None = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(
                f"message rank must be >= 0, got {self.rank}")
        if self.sent_at < 0.0:
            raise ConfigurationError(
                f"message send time must be >= 0, got {self.sent_at}")

    @property
    def nbytes(self) -> int:
        """Modelled wire size of this message."""
        return message_bytes(*self.snapshot.shape)


def message_bytes(nrow: int, ncol: int) -> int:
    """Modelled size of a moment message for an ``nrow x ncol`` problem.

    The model charges eight 8-byte words per matrix entry (the two
    moment matrices plus the derived mean/error/variance set the
    original library ships).  For the paper's 1000 x 2 performance test
    this gives 64 * 2000 + 64 = 128,064 bytes, matching the reported
    "approximately 120 Kbytes" per pass.
    """
    if nrow < 1 or ncol < 1:
        raise ConfigurationError(
            f"matrix dimensions must be >= 1, got {nrow}x{ncol}")
    return 64 * nrow * ncol + _HEADER_BYTES
