"""Hierarchical k-ary tree reduction for the moment exchange.

The paper's Fig. 2 limit case — every realization triggering a pass
serialized through the single 0-th processor — makes the collector the
scaling wall: its cost is a *fixed per-message overhead* times O(M)
worker passes.  This module replaces the flat worker->rank-0 topology
with a configurable k-ary tree.  Interior **reducer nodes** drain
everything their subtree delivered since their last forward, keep the
latest cumulative snapshot per rank (the same latest-per-rank
discipline the collector itself applies), and forward one
:class:`~repro.runtime.messages.CombinedMessage` upstream.  Under load
a reducer coalesces many worker passes into one upstream message, so
the collector serves O(fanout) peers instead of O(M) workers.

**Bit-identity.**  Lubachevsky's warning ("Why The Results of Parallel
and Serial Monte Carlo Simulations May Differ") is honoured
structurally: reducers never pre-sum float payloads.  A combined
message carries the untouched per-rank snapshots; the collector always
performs the one canonical rank-ordered merge
(:meth:`~repro.runtime.collector.Collector.merged`).  Changing the
fanout changes *when* snapshots arrive, never *what* is folded or in
which order — estimates are byte-identical to the flat exchange for
every fanout, which ``tests/test_statistics_parity.py`` pins.

**Fault tolerance.**  Reducers are stateless relays over *cumulative*
snapshots: a respawned reducer rebuilds its latest-per-rank view from
the very next pass of each child, so a dead reducer's subtree
reattaches without data loss (the multiprocess backend respawns the
node on the same queues/rings under ``on_worker_death="reassign"``).
A final message the dying reducer absorbed but never forwarded is
caught by the engine's existing clean-exit grace path and the worker's
remaining quota is reassigned — late duplicates from its subtree drop
harmlessly at the collector.

The ``PARMONC_REDUCER_CRASH`` environment knob injects deterministic
reducer deaths for the fault-tolerance tests (same spirit as the
storage layer's ``PARMONC_CRASHPOINT``): ``"<node_id>:on-final"``
exits the matching reducer the moment it drains a final entry (before
forwarding it); ``"<node_id>:after-forward-<n>"`` exits after the
n-th forward.  ``"*"`` matches every node.
"""

from __future__ import annotations

import os
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.runtime.messages import CombinedMessage, MomentMessage

__all__ = [
    "ReducerNode",
    "ReductionPlan",
    "plan_reduction",
    "run_reducer",
]

#: Seconds a reducer blocks on its inbox when nothing is pending.
_IDLE_WAIT = 0.005

#: Exit code of an injected reducer crash (mirrors SIGKILL's 128+9).
_CRASH_EXITCODE = 137

#: Environment knob for deterministic reducer crash injection.
CRASH_ENV = "PARMONC_REDUCER_CRASH"


@dataclass(frozen=True)
class ReducerNode:
    """One interior node of the reduction tree.

    Attributes:
        node_id: Stable identifier, ``"r<level>.<index>"``.
        level: Tree level; 1 is adjacent to the workers, higher levels
            aggregate lower reducers, the top level reports to the
            collector.
        worker_ranks: Worker ranks attached directly to this node
            (non-empty only at level 1).
        children: Node ids of the reducers attached to this node
            (empty at level 1).
        parent: Parent node id, or None when this node forwards
            straight to the collector.
        subtree_ranks: Every worker rank underneath this node.
    """

    node_id: str
    level: int
    worker_ranks: tuple[int, ...]
    children: tuple[str, ...]
    parent: str | None
    subtree_ranks: tuple[int, ...]


@dataclass(frozen=True)
class ReductionPlan:
    """The reduction topology for one run.

    Attributes:
        fanout: The configured tree width (None for the flat plan).
        nodes: Interior nodes bottom-up (level 1 first); empty for the
            flat worker->collector exchange.
    """

    fanout: int | None
    nodes: tuple[ReducerNode, ...]

    @property
    def flat(self) -> bool:
        """True when workers report straight to the collector."""
        return not self.nodes

    @property
    def levels(self) -> int:
        """Tree depth (0 for the flat plan)."""
        return max((node.level for node in self.nodes), default=0)

    @property
    def roots(self) -> tuple[ReducerNode, ...]:
        """Nodes that forward straight to the collector."""
        return tuple(node for node in self.nodes if node.parent is None)

    @property
    def leaf_parents(self) -> Mapping[int, str]:
        """Worker rank -> node id of the reducer it reports to."""
        return {rank: node.node_id for node in self.nodes
                for rank in node.worker_ranks}

    def node(self, node_id: str) -> ReducerNode:
        """Look one node up by id."""
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise ConfigurationError(f"unknown reducer node {node_id!r}")


def plan_reduction(ranks: Sequence[int],
                   fanout: int | None) -> ReductionPlan:
    """Plan the k-ary reduction tree over the given worker ranks.

    Contiguous runs of ``fanout`` ranks attach to level-1 reducers;
    levels stack until at most ``fanout`` top nodes remain, and those
    report to the collector.  A fanout of None — or one that already
    covers every worker — yields the flat plan: with M <= k workers
    the collector serves at most k peers anyway and an interior hop
    would only add latency.
    """
    if fanout is not None and fanout < 2:
        raise ConfigurationError(
            f"reduction fanout must be >= 2, got {fanout}")
    ordered = sorted(set(ranks))
    if len(ordered) != len(ranks):
        raise ConfigurationError("worker ranks must be unique")
    if fanout is None or len(ordered) <= fanout:
        return ReductionPlan(fanout=fanout, nodes=())
    nodes: list[ReducerNode] = []
    # Level 1: chunk the workers.
    tier: list[ReducerNode] = []
    for index in range(0, len(ordered), fanout):
        chunk = tuple(ordered[index:index + fanout])
        tier.append(ReducerNode(
            node_id=f"r1.{index // fanout}", level=1, worker_ranks=chunk,
            children=(), parent=None, subtree_ranks=chunk))
    level = 1
    # Higher levels: chunk the reducers until <= fanout roots remain.
    while len(tier) > fanout:
        level += 1
        next_tier: list[ReducerNode] = []
        for index in range(0, len(tier), fanout):
            group = tier[index:index + fanout]
            node_id = f"r{level}.{index // fanout}"
            subtree = tuple(rank for child in group
                            for rank in child.subtree_ranks)
            next_tier.append(ReducerNode(
                node_id=node_id, level=level, worker_ranks=(),
                children=tuple(child.node_id for child in group),
                parent=None, subtree_ranks=subtree))
            for child in group:
                nodes.append(ReducerNode(
                    node_id=child.node_id, level=child.level,
                    worker_ranks=child.worker_ranks,
                    children=child.children, parent=node_id,
                    subtree_ranks=child.subtree_ranks))
        tier = next_tier
    nodes.extend(tier)
    nodes.sort(key=lambda node: (node.level, node.node_id))
    return ReductionPlan(fanout=fanout, nodes=tuple(nodes))


def _crash_matches(node_id: str) -> tuple[str, int | None] | None:
    """Parse the crash-injection knob if it targets this node.

    Returns ``(mode, n)`` — ``("on-final", None)`` or
    ``("after-forward", n)`` — or None when the knob is unset or aimed
    at another node.
    """
    spec = os.environ.get(CRASH_ENV)
    if not spec:
        return None
    target, _, mode = spec.partition(":")
    if target not in ("*", node_id) or not mode:
        return None
    if mode == "on-final":
        return ("on-final", None)
    if mode.startswith("after-forward-"):
        try:
            return ("after-forward", int(mode.rsplit("-", 1)[1]))
        except ValueError:
            pass
    raise ConfigurationError(
        f"{CRASH_ENV} mode must be 'on-final' or 'after-forward-<n>', "
        f"got {mode!r}")


def run_reducer(node: ReducerNode, inbox, upstream,
                rings: Sequence = (), *,
                clock=time.monotonic, idle_wait: float = _IDLE_WAIT
                ) -> None:
    """The reducer process body: drain, coalesce, forward, repeat.

    Args:
        node: This reducer's place in the plan.
        inbox: Queue fed by this node's children — direct worker
            passes (queue transport or shm overflow) and child
            reducers' combined messages.  A ``None`` item is the
            shutdown sentinel.
        upstream: Queue towards the parent — the parent reducer's
            inbox, or the backend outbox when this node is a root.
        rings: Shared-memory rings of the workers attached directly to
            this node (shm transport); drained alongside the inbox.
        clock: Monotonic time source stamping the forwards.
        idle_wait: Blocking-poll granularity when nothing is pending.

    One drain cycle moves *everything* currently available from the
    children into the latest-per-rank map, then forwards at most one
    combined message carrying the ranks that changed — so a burst of
    k child passes costs the parent one message, the coalescing that
    keeps upstream load O(fanout).  The loop exits when every subtree
    rank has delivered (and the reducer has forwarded) its final pass,
    or on the sentinel.
    """
    latest: dict[int, MomentMessage] = {}
    dirty: set[int] = set()
    finals: set[int] = set()
    expected = set(node.subtree_ranks)
    crash = _crash_matches(node.node_id)
    forwards = 0
    drained_since_forward = 0
    shm_since_forward = 0
    stopping = False
    while True:
        batch: list[MomentMessage | CombinedMessage] = []
        try:
            while not stopping:
                item = inbox.get_nowait()
                if item is None:
                    # Sentinel: finish this drain cycle (forwarding
                    # whatever it collected) and then stop.
                    stopping = True
                    break
                batch.append(item)
        except queue_module.Empty:
            pass
        for ring in rings:
            while True:
                message = ring.receive()
                if message is None:
                    break
                batch.append(message)
                shm_since_forward += 1
        if not batch and not stopping:
            if expected <= finals and not dirty:
                return
            try:
                item = inbox.get(timeout=idle_wait)
            except queue_module.Empty:
                continue
            if item is None:
                stopping = True
            else:
                batch.append(item)
        saw_final = False
        for item in batch:
            entries = (item.entries if isinstance(item, CombinedMessage)
                       else (item,))
            for entry in entries:
                drained_since_forward += 1
                previous = latest.get(entry.rank)
                if (previous is not None
                        and entry.snapshot.volume
                        < previous.snapshot.volume):
                    # Stale reorder: cumulative volume only grows, and
                    # the collector would drop it anyway — coalescing
                    # it away here keeps upstream bytes honest.
                    continue
                latest[entry.rank] = entry
                dirty.add(entry.rank)
                if entry.final:
                    finals.add(entry.rank)
                    saw_final = True
        if crash is not None and crash[0] == "on-final" and saw_final:
            # Die with the final absorbed but unforwarded: the worst
            # case the engine's grace path must cover.
            os._exit(_CRASH_EXITCODE)
        if dirty:
            entries = tuple(latest[rank] for rank in sorted(dirty))
            # A job-scoped tree serves exactly one job, so the combined
            # message inherits its entries' tag (None on the classic
            # run-wide tree, keeping those messages byte-identical).
            upstream.put(CombinedMessage(
                node_id=node.node_id, entries=entries, sent_at=clock(),
                metrics={"level": node.level,
                         "drained": drained_since_forward,
                         "shm_reads": shm_since_forward},
                job=entries[0].job))
            dirty.clear()
            forwards += 1
            drained_since_forward = 0
            shm_since_forward = 0
            if (crash is not None and crash[0] == "after-forward"
                    and forwards >= (crash[1] or 0)):
                # "After forward" means after the forward *delivered*:
                # flush the mp.Queue feeder thread before dying, or
                # os._exit would silently eat the message just sent
                # and turn this into a different failure mode.
                if hasattr(upstream, "close") \
                        and hasattr(upstream, "join_thread"):
                    upstream.close()
                    upstream.join_thread()
                os._exit(_CRASH_EXITCODE)
        if stopping or (expected <= finals and not dirty):
            return
