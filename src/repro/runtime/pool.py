"""The ``parmonc-pool`` worker daemon: remote muscle for a run.

A pool listens on TCP (asyncio) and contributes local worker processes
to any run that connects — the distributed analogue of the paper's MPI
ranks, except that pools may come and go while the run is in flight.
Each connection is a *session* that follows the wire protocol of
:mod:`repro.runtime.wire`; the daemon keeps listening between and
during sessions, so back-to-back runs (and overlapping runs from
different clients) need no restart::

    run                                pool
     | -- HELLO {config, routine} ----> |   import/unpickle the routine
     | <---- WELCOME {workers: N} ----- |   advertise capacity
     | -- ASSIGN {rank, quota} -------> |   fork a worker process
     | <-------- DATA {message} ------- |   every data pass, forwarded
     | <---- EXIT {rank, exitcode} ---- |   after the worker's queue is
     |                                  |   drained (drain-before-verdict)
     | <-> HEARTBEAT <->                |   liveness, both directions
     | -- BYE ------------------------> |   session over, workers freed

A multi-job scheduler run sends ``HELLO {jobs: {id: {config,
routine}}}`` instead, then tags each ASSIGN with the owning job id;
the pool runs every job's workers side by side, tags their DATA
passes and echoes the job on EXIT, so the run can route messages and
deaths back to the right experiment.

Every ASSIGN runs in its own OS process (so a stuck or ``kill -9``-ed
realization routine never takes the daemon down) with a private queue
back to the daemon; a watcher thread forwards each
:class:`~repro.runtime.messages.MomentMessage` as a DATA frame and —
only after the queue is fully drained — reports the process's exit.
The run side therefore never sees an EXIT overtake the data that
preceded it, which is what lets the engine's reassignment keep
estimates bit-identical.

A pool whose run stops heartbeating (crashed, unplugged) terminates
the session's workers and returns to listening; a run whose pool
vanishes routes the loss through ``on_worker_death``.
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import os
import queue as queue_module
import threading
import time
from dataclasses import replace

from repro.exceptions import WireError
from repro.obs.telemetry import WorkerTelemetry
from repro.runtime.config import RunConfig
from repro.runtime.wire import (
    FrameKind,
    config_from_payload,
    read_frame,
    routine_from_payload,
    write_frame,
)
from repro.runtime.worker import make_batched, run_worker

__all__ = ["PoolServer", "DEFAULT_POOL_PORT"]

_logger = logging.getLogger(__name__)

#: Default ``parmonc-pool`` listening port (chosen to dodge the common
#: registered services; override with ``--port``).
DEFAULT_POOL_PORT = 9737

#: How long a worker process gets to die politely at session teardown.
_TERMINATE_SECONDS = 2.0


def _pool_worker_entry(routine, config: RunConfig, rank: int, quota: int,
                       outbox, deadline_in: float | None,
                       job: str | None = None) -> None:
    """Worker process body: the standard loop, queueing messages home.

    ``deadline_in`` is the run's remaining time budget in seconds —
    shipped as a duration because absolute monotonic clocks do not
    travel between hosts.  ``job`` tags every message with the owning
    job id (multi-job scheduler sessions); tagging here, in the child,
    keeps the daemon's forwarding path a pure byte relay.
    """
    deadline = (time.monotonic() + deadline_in
                if deadline_in is not None else None)
    telemetry = WorkerTelemetry(rank) if config.telemetry else None
    if job is None:
        send = outbox.put
    else:
        send = (lambda message, _put=outbox.put, _job=job:
                _put(replace(message, job=_job)))
    run_worker(routine, config, rank, quota, send=send,
               deadline=deadline, telemetry=telemetry)


def _import_routine(spec: str):
    """``module:function`` resolver for HELLO spec payloads."""
    from repro.cli.run import load_routine
    return load_routine(spec)


class _Worker:
    """One running assignment: process + queue + forwarding thread."""

    def __init__(self, rank: int, process, outbox,
                 job: str | None = None) -> None:
        self.rank = rank
        self.process = process
        self.outbox = outbox
        self.job = job


class _Session:
    """One connected run, from HELLO to BYE (or connection loss)."""

    def __init__(self, server: "PoolServer", reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._server = server
        self._reader = reader
        self._writer = writer
        self._loop = asyncio.get_running_loop()
        # Running assignments keyed ``(job, rank)``; job is None for a
        # classic single-run session, so two jobs of one scheduler can
        # both field a rank 0 here without colliding.
        self._workers: dict[tuple[str | None, int], _Worker] = {}
        self._closed = False
        self._last_run_heartbeat = time.monotonic()
        self._peer = writer.get_extra_info("peername")
        # Per-job ``(routine, config)`` contexts; a classic single-run
        # HELLO lands under the None key.
        self._contexts: dict[str | None, tuple] = {}
        # Streaming sessions declare jobs mid-session (SUBMIT frames)
        # and may withdraw them (CANCEL); a late ASSIGN racing its
        # job's cancellation is dropped, not fatal.
        self._streaming = False
        self._cancelled: set[str | None] = set()

    async def run(self) -> None:
        heartbeat_task = None
        try:
            kind, payload = await read_frame(self._reader)
            if kind is not FrameKind.HELLO:
                raise WireError(
                    f"expected a HELLO frame, got {kind.name}")
            self._adopt_hello(payload)
            write_frame(self._writer, FrameKind.WELCOME, {
                "workers": self._server.workers,
                "pid": os.getpid(),
                "pool": "%s:%d" % self._server.address,
            })
            await self._writer.drain()
            _logger.info("session from %s: %d workers offered",
                         self._peer, self._server.workers)
            heartbeat_task = self._loop.create_task(self._heartbeats())
            while True:
                kind, payload = await read_frame(self._reader)
                if kind is FrameKind.ASSIGN:
                    self._start_worker(payload)
                elif kind is FrameKind.SUBMIT:
                    self._submit_job(payload)
                elif kind is FrameKind.CANCEL:
                    self._cancel_job(payload)
                elif kind is FrameKind.HEARTBEAT:
                    self._last_run_heartbeat = time.monotonic()
                elif kind is FrameKind.BYE:
                    _logger.info("session from %s: bye", self._peer)
                    break
                elif kind is FrameKind.ERROR:
                    _logger.warning("session from %s: run error: %s",
                                    self._peer, payload.get("detail"))
                    break
                else:
                    raise WireError(
                        f"unexpected {kind.name} frame from the run")
        except (asyncio.IncompleteReadError, ConnectionError):
            _logger.info("session from %s: connection lost", self._peer)
        except WireError as exc:
            _logger.warning("session from %s: %s", self._peer, exc)
            self._send(FrameKind.ERROR, {"detail": str(exc)})
        finally:
            if heartbeat_task is not None:
                heartbeat_task.cancel()
            self._shutdown()

    # -- handshake ---------------------------------------------------------

    def _adopt_hello(self, payload: dict) -> None:
        jobs = payload.get("jobs")
        self._streaming = bool(payload.get("streaming"))
        if jobs is None:
            # Classic single-run HELLO: {config, routine[, batch_size]}.
            self._contexts[None] = self._adopt_context(payload)
        else:
            if not isinstance(jobs, dict) or (not jobs
                                              and not self._streaming):
                # Only a streaming session may open empty-handed: its
                # jobs arrive later as SUBMIT frames.
                raise WireError(
                    "hello jobs payload must be a non-empty object")
            for job_id, entry in jobs.items():
                if not isinstance(entry, dict):
                    raise WireError(
                        f"hello job {job_id!r} entry must be an object")
                self._contexts[str(job_id)] = self._adopt_context(entry)
        self._time_limit = payload.get("time_limit")

    def _submit_job(self, payload: dict) -> None:
        """Adopt one job declared mid-session (streaming only)."""
        if not self._streaming:
            raise WireError(
                "submit frames are only valid in a streaming session")
        job = payload.get("job")
        if job is None:
            raise WireError("submit frame misses its job id")
        job = str(job)
        if job in self._contexts:
            return  # idempotent re-announcement
        self._contexts[job] = self._adopt_context(payload)
        _logger.info("session from %s: job %s submitted", self._peer, job)

    def _cancel_job(self, payload: dict) -> None:
        """Terminate a withdrawn job's workers (streaming only)."""
        if not self._streaming:
            raise WireError(
                "cancel frames are only valid in a streaming session")
        job = payload.get("job")
        job = None if job is None else str(job)
        self._cancelled.add(job)
        terminated = 0
        for (owner, _rank), worker in list(self._workers.items()):
            if owner == job and worker.process.exitcode is None:
                worker.process.terminate()
                terminated += 1
        _logger.info("session from %s: job %s cancelled (%d workers "
                     "terminated)", self._peer, job, terminated)

    def _adopt_context(self, payload: dict) -> tuple:
        """One ``(routine, config)`` context from a HELLO (sub)payload."""
        try:
            config_payload = payload["config"]
            routine_payload = payload["routine"]
        except KeyError as exc:
            raise WireError(f"hello frame misses {exc}") from exc
        config = config_from_payload(config_payload)
        routine = routine_from_payload(routine_payload, _import_routine)
        batch_size = payload.get("batch_size")
        if batch_size and getattr(routine, "batch_size", None) is None:
            routine = make_batched(routine, int(batch_size))
        return routine, config

    # -- worker lifecycle --------------------------------------------------

    def _start_worker(self, payload: dict) -> None:
        try:
            rank = int(payload["rank"])
            quota = int(payload["quota"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError(f"malformed assign frame: {exc}") from exc
        job = payload.get("job")
        job = None if job is None else str(job)
        label = f"rank {rank}" if job is None else f"job {job} rank {rank}"
        if job in self._cancelled:
            # The run cancelled this job; an ASSIGN that raced the
            # CANCEL is dropped rather than poisoning the session.
            _logger.info("session from %s: dropping %s of a cancelled "
                         "job", self._peer, label)
            return
        if (job, rank) in self._workers:
            raise WireError(f"{label} is already assigned on this pool")
        try:
            routine, config = self._contexts[job]
        except KeyError:
            raise WireError(
                f"assign frame names job {job!r}, which the session's "
                f"hello did not declare") from None
        context = self._server.context
        outbox = context.Queue()
        process = context.Process(
            target=_pool_worker_entry,
            args=(routine, config, rank, quota, outbox,
                  payload.get("deadline_in"), job),
            daemon=True)
        process.start()
        worker = _Worker(rank, process, outbox, job=job)
        self._workers[(job, rank)] = worker
        _logger.info("session from %s: %s started (quota=%d, pid=%s)",
                     self._peer, label, quota, process.pid)
        threading.Thread(target=self._watch, args=(worker,),
                         daemon=True).start()

    def _watch(self, worker: _Worker) -> None:
        """Forward a worker's messages; report its exit only once drained.

        Runs in a plain thread (queue reads block).  The EXIT frame is
        sent strictly after every message the worker managed to queue,
        so the run's drain-before-verdict logic sees all delivered data
        before judging the death.
        """
        process, outbox = worker.process, worker.outbox
        while not self._closed:
            try:
                message = outbox.get(timeout=0.1)
            except queue_module.Empty:
                if process.exitcode is None:
                    continue
                while True:  # the process is gone; flush its leftovers
                    try:
                        self._forward(worker.rank, outbox.get_nowait())
                    except queue_module.Empty:
                        break
                    except Exception:  # torn pickle from a kill -9
                        break
                exit_payload = {
                    "rank": worker.rank,
                    "exitcode": process.exitcode,
                }
                if worker.job is not None:
                    exit_payload["job"] = worker.job
                self._send_threadsafe(FrameKind.EXIT, exit_payload)
                try:
                    self._loop.call_soon_threadsafe(
                        self._workers.pop, (worker.job, worker.rank),
                        None)
                except RuntimeError:  # pool already shut down
                    pass
                return
            except Exception:
                return
            self._forward(worker.rank, message)

    def _forward(self, rank: int, message) -> None:
        from repro.runtime.wire import message_to_payload
        self._send_threadsafe(FrameKind.DATA, message_to_payload(message))

    # -- frame plumbing ----------------------------------------------------

    def _send(self, kind: FrameKind, payload: dict) -> None:
        if self._closed or self._writer.is_closing():
            return
        try:
            write_frame(self._writer, kind, payload)
        except (ConnectionError, RuntimeError):
            pass

    def _send_threadsafe(self, kind: FrameKind, payload: dict) -> None:
        try:
            self._loop.call_soon_threadsafe(self._send, kind, payload)
        except RuntimeError:  # loop already closed at teardown
            pass

    @property
    def busy(self) -> int:
        """Worker processes this session is currently running."""
        return len(self._workers)

    async def _heartbeats(self) -> None:
        interval = self._server.heartbeat_interval
        while True:
            await asyncio.sleep(interval)
            self._send(FrameKind.HEARTBEAT, {
                # Server-wide occupancy: concurrent sessions share one
                # physical worker budget, so each run sees the true load.
                "busy": self._server.busy_workers,
                "session_busy": len(self._workers),
                "workers": self._server.workers,
            })
            silent = time.monotonic() - self._last_run_heartbeat
            if silent > self._server.session_timeout:
                _logger.warning(
                    "session from %s: run silent for %.1fs, dropping it",
                    self._peer, silent)
                self._writer.close()
                return

    def _shutdown(self) -> None:
        self._closed = True
        for worker in list(self._workers.values()):
            process = worker.process
            if process.exitcode is None:
                process.terminate()
                process.join(timeout=_TERMINATE_SECONDS)
                if process.is_alive():
                    process.kill()
        self._workers.clear()
        if not self._writer.is_closing():
            self._writer.close()


class PoolServer:
    """A TCP daemon offering local worker processes to remote runs.

    Args:
        host: Interface to bind (default loopback; bind ``0.0.0.0``
            explicitly to serve other hosts — the protocol executes
            user routines, so expose it to trusted networks only).
        port: TCP port (0 picks a free one; see :attr:`address`).
        workers: Worker-process slots to advertise (default: CPU count).
        start_method: ``multiprocessing`` start method for worker
            processes (None = platform default; ``fork`` keeps
            unpickled closures usable).
        heartbeat_interval: Seconds between pool heartbeats to the run.
        session_timeout: Seconds of run silence before the session is
            dropped and its workers reclaimed.
    """

    def __init__(self, host: str = "127.0.0.1",
                 port: int = DEFAULT_POOL_PORT,
                 workers: int | None = None,
                 start_method: str | None = None,
                 heartbeat_interval: float = 1.0,
                 session_timeout: float = 60.0) -> None:
        self._host = host
        self._port = port
        self.workers = workers if workers else (os.cpu_count() or 1)
        self._start_method = start_method
        self.heartbeat_interval = heartbeat_interval
        self.session_timeout = session_timeout
        self._context = None
        self._address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        self._sessions: set[_Session] = set()
        self.sessions_served = 0

    @property
    def context(self):
        """The multiprocessing context worker processes spawn from."""
        if self._context is None:
            self._context = multiprocessing.get_context(self._start_method)
        return self._context

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        if self._address is None:
            raise RuntimeError("the pool is not serving yet")
        return self._address

    async def serve(self, ready: threading.Event | None = None) -> None:
        """Bind and serve sessions until :meth:`stop` is called."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle, self._host, self._port)
        except BaseException as exc:
            self._startup_error = exc
            if ready is not None:
                ready.set()
            raise
        self._address = server.sockets[0].getsockname()[:2]
        _logger.info("parmonc-pool listening on %s:%d with %d workers",
                     self._address[0], self._address[1], self.workers)
        if ready is not None:
            ready.set()
        async with server:
            await self._stop_event.wait()

    @property
    def busy_workers(self) -> int:
        """Worker processes running across *all* live sessions.

        Sessions share the daemon's one physical worker budget; this
        server-wide count is what heartbeats advertise, so concurrent
        runs see each other's load instead of believing the pool idle.
        """
        return sum(session.busy for session in self._sessions)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        session = _Session(self, reader, writer)
        self._sessions.add(session)
        self.sessions_served += 1
        try:
            await session.run()
        finally:
            self._sessions.discard(session)

    # -- thread facade (tests, embedded pools) -----------------------------

    def start(self) -> tuple[str, int]:
        """Serve from a daemon thread; return the bound address."""
        ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve_quietly(ready)),
            daemon=True, name="parmonc-pool")
        self._thread.start()
        ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"parmonc-pool failed to bind {self._host}:{self._port}"
            ) from self._startup_error
        return self.address

    async def _serve_quietly(self, ready: threading.Event) -> None:
        try:
            await self.serve(ready)
        except BaseException:
            if self._startup_error is None:
                raise

    def stop(self) -> None:
        """Stop serving and join the background thread, if any."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
