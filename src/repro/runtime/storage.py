"""Durable, crash-safe artifact I/O for the ``parmonc_data`` tree.

PARMONC's recovery promise (§3.4/§3.6) — an abruptly killed job loses
no realization the collector had merged — only holds if the on-disk
artifacts are themselves crash-safe.  This module is the single place
where the persistence layer touches the filesystem:

* :func:`atomic_write_text` / :func:`write_artifact` implement the
  write-temp → fsync → rename (+ directory fsync) discipline, so after
  a crash at *any* instruction the target path holds either the
  complete old content or the complete new content, never a torn mix.
* :func:`write_artifact` wraps JSON payloads in a versioned envelope
  carrying a SHA-256 payload checksum; :func:`read_artifact` verifies
  it, so silent truncation or bit rot is detected, not loaded.
* :func:`quarantine` renames a torn/corrupt artifact to ``*.corrupt``
  (keeping the evidence) instead of letting one bad file abort a whole
  recovery; listeners registered via :func:`add_quarantine_listener`
  observe every quarantine (the runtime forwards them to the
  ``storage.quarantined`` telemetry event).
* :func:`sweep_temp_files` removes ``*.tmp`` leftovers a crash may
  have stranded between write and rename.

Crash injection
---------------

Every I/O step is bracketed by **named crashpoints** — a failpoint
API in the style of libfailpoints/FreeBSD ``fail(9)``.  A crashpoint
does nothing in production.  Tests install a trigger with
:func:`install_crashpoint` (raising :class:`CrashInjected`, which
derives from ``BaseException`` so ordinary ``except Exception``
handlers cannot swallow the simulated kill), or export
``PARMONC_CRASHPOINT=<name>`` to make a *subprocess* die with
``os._exit(137)`` at the named point — the moral equivalent of a
SIGKILL mid-write.  :func:`trace_crashpoints` records which points a
scenario passes through, so a property test can kill a run at every
one of them and assert the all-old-or-all-new invariant.

Crashpoint names are ``<label>.<step>`` with steps ``before_write``,
``after_write`` (temp written, not yet fsynced), ``before_rename``
(temp durable, target still old) and ``after_rename`` (target new,
directory entry not yet fsynced).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from contextlib import contextmanager
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Iterator

from repro.exceptions import (
    ArtifactVersionError,
    CorruptArtifactError,
)

__all__ = [
    "CrashInjected",
    "add_quarantine_listener",
    "atomic_write_text",
    "clear_crashpoints",
    "crashpoint",
    "crashpoint_installed",
    "durable_writes",
    "install_crashpoint",
    "payload_checksum",
    "quarantine",
    "read_artifact",
    "remove_quarantine_listener",
    "sweep_temp_files",
    "trace_crashpoints",
    "uninstall_crashpoint",
    "write_artifact",
]

_logger = logging.getLogger(__name__)

#: Environment variable that turns a crashpoint into an ``os._exit`` —
#: the subprocess analogue of a SIGKILL at exactly that instruction.
CRASHPOINT_ENV = "PARMONC_CRASHPOINT"

#: Exit status used by environment-triggered crashpoints (mirrors the
#: shell's 128+SIGKILL convention so the parent sees a "killed" child).
CRASH_EXIT_CODE = 137

#: Set ``PARMONC_NO_FSYNC=1`` to skip fsync calls (CI speed knob; the
#: rename discipline alone still guarantees all-old-or-all-new against
#: process death, just not against power loss).
_NO_FSYNC_ENV = "PARMONC_NO_FSYNC"

_SUFFIX_TEMP = ".tmp"
_SUFFIX_CORRUPT = ".corrupt"


class CrashInjected(BaseException):
    """A test-installed crashpoint fired.

    Derives from ``BaseException`` so that the simulated kill rips
    through ``except Exception`` blocks the way a real SIGKILL would
    rip through everything.

    Attributes:
        crashpoint: Name of the crashpoint that fired.
    """

    def __init__(self, crashpoint_name: str) -> None:
        super().__init__(f"injected crash at crashpoint {crashpoint_name!r}")
        self.crashpoint = crashpoint_name


_triggers: dict[str, Callable[[str], None]] = {}
_traces: list[list[str]] = []


def _raise_crash(name: str) -> None:
    raise CrashInjected(name)


def crashpoint(name: str) -> None:
    """Pass through the named crashpoint; fire any installed trigger.

    In production this is a dictionary miss and an environment check.
    Under test a trigger installed for ``name`` runs here (the default
    trigger raises :class:`CrashInjected`); when the process environment
    carries ``PARMONC_CRASHPOINT=<name>`` the process dies on the spot
    with ``os._exit`` — buffers unflushed, handlers skipped, exactly
    like a kill signal.
    """
    for trace in _traces:
        trace.append(name)
    trigger = _triggers.get(name)
    if trigger is not None:
        trigger(name)
    if os.environ.get(CRASHPOINT_ENV) == name:
        os._exit(CRASH_EXIT_CODE)


def install_crashpoint(name: str,
                       trigger: Callable[[str], None] | None = None) -> None:
    """Arm ``name``; by default it raises :class:`CrashInjected`."""
    _triggers[name] = trigger if trigger is not None else _raise_crash


def uninstall_crashpoint(name: str) -> None:
    """Disarm ``name`` (no-op when not installed)."""
    _triggers.pop(name, None)


def clear_crashpoints() -> None:
    """Disarm every installed crashpoint."""
    _triggers.clear()


@contextmanager
def crashpoint_installed(name: str,
                         trigger: Callable[[str], None] | None = None
                         ) -> Iterator[None]:
    """Context manager: arm ``name`` on entry, disarm on exit."""
    install_crashpoint(name, trigger)
    try:
        yield
    finally:
        uninstall_crashpoint(name)


@contextmanager
def trace_crashpoints() -> Iterator[list[str]]:
    """Record every crashpoint passed while the context is active.

    Yields a list that accumulates crashpoint names in execution
    order.  A property test runs the scenario once under tracing, then
    re-runs it once per recorded name with that crashpoint armed.
    """
    trace: list[str] = []
    _traces.append(trace)
    try:
        yield trace
    finally:
        _traces.remove(trace)


# ---------------------------------------------------------------------------
# Durable writes

_durable_override: bool | None = None


def _durable() -> bool:
    if _durable_override is not None:
        return _durable_override
    return not os.environ.get(_NO_FSYNC_ENV)


@contextmanager
def durable_writes(enabled: bool) -> Iterator[None]:
    """Force fsync on (or off) regardless of ``PARMONC_NO_FSYNC``."""
    global _durable_override
    previous = _durable_override
    _durable_override = enabled
    try:
        yield
    finally:
        _durable_override = previous


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem refuses dir fsync
        pass
    finally:
        os.close(fd)


def temp_path(path: Path) -> Path:
    """The temp-file sibling an atomic write of ``path`` goes through."""
    return path.with_name(path.name + _SUFFIX_TEMP)


def atomic_write_text(path: Path, text: str, *,
                      label: str | None = None) -> None:
    """Write ``text`` to ``path`` via write-temp → fsync → rename.

    After a crash at any point the target holds either its previous
    content or exactly ``text``; the only possible debris is a
    ``*.tmp`` sibling, swept by :func:`sweep_temp_files`.

    Args:
        path: Destination path (parent directories are created).
        text: Full new content.
        label: Crashpoint label; defaults to the file name.
    """
    label = label if label is not None else path.name
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = temp_path(path)
    crashpoint(f"{label}.before_write")
    with temp.open("w") as handle:
        handle.write(text)
        crashpoint(f"{label}.after_write")
        handle.flush()
        if _durable():
            os.fsync(handle.fileno())
    crashpoint(f"{label}.before_rename")
    os.replace(temp, path)
    crashpoint(f"{label}.after_rename")
    if _durable():
        _fsync_dir(path.parent)


# ---------------------------------------------------------------------------
# Checksummed artifact envelope

def _timestamp() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: dict) -> str:
    """``sha256:<hex>`` over the canonical JSON form of ``payload``."""
    digest = hashlib.sha256(_canonical(payload).encode()).hexdigest()
    return f"sha256:{digest}"


def write_artifact(path: Path, kind: str, payload: dict, *,
                   version: int, label: str | None = None) -> None:
    """Atomically write a checksummed, versioned JSON artifact.

    The on-disk document is::

        {"format": kind, "version": N, "checksum": "sha256:...",
         "written_at": "...", "payload": {...}}

    and is produced with the same crash-safety guarantees as
    :func:`atomic_write_text`.
    """
    document = {
        "format": kind,
        "version": int(version),
        "checksum": payload_checksum(payload),
        "written_at": _timestamp(),
        "payload": payload,
    }
    atomic_write_text(path, json.dumps(document), label=label)


def read_artifact(path: Path, kind: str, *,
                  max_version: int) -> tuple[dict, int]:
    """Read and verify an artifact written by :func:`write_artifact`.

    Pre-envelope files (no ``checksum``/``payload`` keys) are returned
    whole with version 0, so callers keep loading save-points written
    before checksumming existed.

    Returns:
        ``(payload, version)``.

    Raises:
        CorruptArtifactError: Unparseable JSON (truncation), a payload
            that fails its checksum, or a document of a different kind.
        ArtifactVersionError: An envelope version newer than
            ``max_version`` (the file is fine — the reader is too old —
            so it must *not* be quarantined).
    """
    try:
        raw = path.read_text()
    except OSError as exc:
        raise CorruptArtifactError(f"unreadable artifact {path}: {exc}") \
            from exc
    try:
        document = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise CorruptArtifactError(
            f"truncated or garbled artifact {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise CorruptArtifactError(
            f"artifact {path} is not a JSON object")
    if "checksum" not in document or "payload" not in document:
        # Legacy pre-envelope artifact: no integrity data to verify.
        return document, 0
    stored_kind = document.get("format")
    if stored_kind != kind:
        raise CorruptArtifactError(
            f"artifact {path} has format {stored_kind!r}, expected "
            f"{kind!r}")
    try:
        version = int(document["version"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptArtifactError(
            f"artifact {path} carries no usable version") from exc
    if version > max_version:
        raise ArtifactVersionError(
            f"artifact {path} has format version {version}, newer than "
            f"the supported {max_version}; upgrade this installation "
            f"instead of deleting the file")
    payload = document["payload"]
    if not isinstance(payload, dict):
        raise CorruptArtifactError(
            f"artifact {path} payload is not a JSON object")
    if payload_checksum(payload) != document["checksum"]:
        raise CorruptArtifactError(
            f"artifact {path} fails its checksum; the file is torn or "
            f"bit-rotten")
    return payload, version


# ---------------------------------------------------------------------------
# Quarantine

_quarantine_listeners: list[Callable[[Path, Path, str], None]] = []


def add_quarantine_listener(listener: Callable[[Path, Path, str], None]
                            ) -> None:
    """Observe quarantines: ``listener(original, quarantined, reason)``."""
    _quarantine_listeners.append(listener)


def remove_quarantine_listener(listener: Callable[[Path, Path, str], None]
                               ) -> None:
    """Stop observing quarantines (no-op when not registered)."""
    if listener in _quarantine_listeners:
        _quarantine_listeners.remove(listener)


def quarantine(path: Path, reason: str) -> Path:
    """Set a torn/corrupt artifact aside as ``<name>.corrupt``.

    The evidence is kept (renamed, never deleted) so it can be
    inspected, while readers that re-scan the directory no longer see
    the bad file.  Returns the quarantined path.
    """
    target = path.with_name(path.name + _SUFFIX_CORRUPT)
    serial = 0
    while target.exists():
        serial += 1
        target = path.with_name(f"{path.name}{_SUFFIX_CORRUPT}.{serial}")
    os.replace(path, target)
    _logger.warning("quarantined corrupt artifact %s -> %s (%s)",
                    path, target.name, reason)
    for listener in list(_quarantine_listeners):
        listener(path, target, reason)
    return target


def quarantined_files(root: Path) -> list[Path]:
    """Every quarantined artifact under ``root``, sorted."""
    if not root.exists():
        return []
    return sorted(p for p in root.rglob(f"*{_SUFFIX_CORRUPT}*")
                  if p.is_file())


def sweep_temp_files(root: Path) -> list[Path]:
    """Delete stale ``*.tmp`` files a crash stranded under ``root``.

    Safe whenever no writer is active: an atomic write either renamed
    its temp away or abandoned it, and an abandoned temp is garbage by
    definition.  Returns the removed paths.
    """
    if not root.exists():
        return []
    removed = []
    for path in sorted(root.rglob(f"*{_SUFFIX_TEMP}")):
        if not path.is_file():
            continue
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced by another sweeper
            continue
        removed.append(path)
    if removed:
        _logger.info("swept %d stale temp file(s) under %s",
                     len(removed), root)
    return removed
