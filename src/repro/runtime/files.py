"""The ``parmonc_data`` directory: result files and save-points (§3.6).

Layout under the user's working directory::

    parmonc_data/
      results/
        func.dat         matrix of sample means
        func_ci.dat      means + absolute/relative errors + variances
        func_log.dat     run log: volume, mean time, error upper bounds
      savepoints/
        processor_<m>.json   latest subtotal snapshot of processor m
      telemetry/
        events.jsonl     structured run record (telemetry-enabled runs)
        metrics.json     final metrics snapshot (see docs/observability.md)
      savepoint.json     merged snapshot + session metadata (resume source)
      parmonc_exp.dat    registry of stochastic experiments

The per-processor save-points exist so that ``manaver`` can recover the
full sample after an abrupt job termination, exactly as in §3.4.

Every artifact is written through :mod:`repro.runtime.storage` — atomic
write-temp → fsync → rename, with JSON payloads carried in a versioned,
checksummed envelope — so a kill at any instruction leaves either the
old or the new file, never a torn one.  A file that *does* fail its
checksum (bit rot, manual tampering) is quarantined as ``*.corrupt``
and skipped with a warning instead of aborting the whole recovery; see
``docs/protocol.md``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.exceptions import (
    ArtifactVersionError,
    ConfigurationError,
    CorruptArtifactError,
    ResumeError,
)
from repro.runtime import storage
from repro.stats.accumulator import MomentSnapshot
from repro.stats.estimators import Estimates
from repro.stats.statistic import (
    Statistic,
    payload_map,
    statistics_from_payload_map,
)

__all__ = [
    "DataDirectory",
    "ProcessorSubtotal",
    "SavepointMeta",
    "render_mean_matrix",
    "render_ci_table",
    "render_log",
    "GENPARAM_FILENAME",
    "genparam_fingerprint",
    "read_genparam_file",
    "write_genparam_file",
]

_logger = logging.getLogger(__name__)

GENPARAM_FILENAME = "parmonc_genparam.dat"

#: Current save-point envelope version.  Version 1 was the bare JSON
#: document without checksum or manifest; version 2 moved to the
#: checksummed :func:`repro.runtime.storage.write_artifact` envelope;
#: version 3 added the optional ``statistics`` map of serialized
#: :class:`~repro.stats.statistic.Statistic` payloads (moment-only
#: version-2 artifacts still load).
SAVEPOINT_VERSION = 3
SAVEPOINT_FORMAT = "parmonc/savepoint"
PROCESSOR_FORMAT = "parmonc/processor-savepoint"


def _timestamp() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def render_mean_matrix(estimates: Estimates) -> str:
    """Render ``func.dat``: the matrix of sample means, one row per line."""
    lines = []
    for row in estimates.mean:
        lines.append(" ".join(f"{value: .15e}" for value in row))
    return "\n".join(lines) + "\n"


def render_ci_table(estimates: Estimates) -> str:
    """Render ``func_ci.dat``: per-entry mean, errors and variance.

    Columns: row index, column index, sample mean, absolute error,
    relative error (percent), sample variance.
    """
    lines = ["# i j mean abs_error rel_error_percent variance"]
    nrow, ncol = estimates.shape
    for i in range(nrow):
        for j in range(ncol):
            lines.append(
                f"{i + 1} {j + 1} "
                f"{estimates.mean[i, j]: .15e} "
                f"{estimates.abs_error[i, j]: .15e} "
                f"{estimates.rel_error[i, j]: .6e} "
                f"{estimates.variance[i, j]: .15e}")
    return "\n".join(lines) + "\n"


def render_log(estimates: Estimates, *, seqnum: int, processors: int,
               sessions: int, elapsed: float | None = None) -> str:
    """Render ``func_log.dat``: summary information about the simulation."""
    lines = [
        f"total_sample_volume: {estimates.volume}",
        f"mean_time_per_realization_sec: {estimates.mean_time:.6e}",
        f"abs_error_upper_bound: {estimates.abs_error_max:.6e}",
        f"rel_error_upper_bound_percent: {estimates.rel_error_max:.6e}",
        f"variance_upper_bound: {estimates.variance_max:.6e}",
        f"matrix_shape: {estimates.shape[0]} {estimates.shape[1]}",
        f"seqnum: {seqnum}",
        f"processors: {processors}",
        f"sessions: {sessions}",
        f"written_at: {_timestamp()}",
    ]
    if elapsed is not None:
        lines.append(f"elapsed_sec: {elapsed:.6e}")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class SavepointMeta:
    """Metadata stored beside the merged snapshot.

    Attributes:
        shape: Matrix shape of the stored sample.
        used_seqnums: Every experiments subsequence any session — live
            or superseded — ever consumed.
        sessions: Number of sessions folded into the snapshot.
        manifest: Session manifest of the writing session (processor
            count, leap exponents, ``parmonc_genparam.dat``
            fingerprint); None for pre-manifest save-points.
        statistics: Extra cumulative statistics stored beside the
            moment snapshot, keyed by kind (empty for legacy
            moment-only save-points).
        unknown_payloads: Raw payloads whose kinds are not registered
            in this process — written by a newer version or an
            un-imported custom statistic.  Kept verbatim so a rewrite
            (``manaver``) carries them forward instead of silently
            dropping them; callers surface the kinds via
            :attr:`unknown_statistics`.
    """

    shape: tuple[int, int]
    used_seqnums: tuple[int, ...]
    sessions: int
    manifest: dict | None = field(default=None)
    statistics: dict[str, Statistic] = field(default_factory=dict)
    unknown_payloads: dict[str, dict] = field(default_factory=dict)

    @property
    def unknown_statistics(self) -> tuple[str, ...]:
        """Kinds stored in the artifact but not registered here."""
        return tuple(sorted(self.unknown_payloads))

    @property
    def processors(self) -> int | None:
        """Processor count of the writing session, when recorded."""
        if self.manifest is None:
            return None
        value = self.manifest.get("processors")
        return int(value) if value is not None else None


# Backwards-compatible alias for the pre-PR-4 private name.
_SavepointMeta = SavepointMeta


@dataclass(frozen=True)
class ProcessorSubtotal:
    """One processor's persisted subtotal (the ``manaver`` input).

    Attributes:
        rank: The writing processor's index.
        snapshot: Its latest cumulative moment snapshot.
        statistics: The extra statistics that rode the same message,
            keyed by kind (empty for moment-only runs and legacy
            files).
        session: Session tag, or None for untagged legacy files.
    """

    rank: int
    snapshot: MomentSnapshot
    statistics: dict[str, Statistic] = field(default_factory=dict)
    session: int | None = None


def _parse_statistics(payload: dict, path: Path
                      ) -> tuple[dict[str, Statistic], dict[str, dict]]:
    """Deserialize an artifact's optional ``statistics`` map.

    Returns the registered statistics plus the raw payloads of
    unregistered kinds.  A missing map (legacy moment-only artifact)
    yields two empty dicts; a malformed one raises ``ValueError`` so
    the caller's quarantine path handles it like any other corruption.
    """
    raw = payload.get("statistics")
    if raw is None:
        return {}, {}
    if not isinstance(raw, dict):
        raise ValueError("statistics map is not an object")
    statistics, unknown = statistics_from_payload_map(raw)
    unknown_payloads = {kind: raw[kind] for kind in unknown}
    if unknown:
        _logger.warning(
            "%s carries unregistered statistic kind(s) %s; payloads "
            "kept but not merged (import/register the statistic to "
            "use them)", path.name, sorted(unknown))
    return statistics, unknown_payloads


class DataDirectory:
    """Handle on a ``parmonc_data`` directory.

    Args:
        workdir: The user's working directory; ``parmonc_data`` is
            created beneath it lazily.
    """

    def __init__(self, workdir: Path | str) -> None:
        self._root = Path(workdir) / "parmonc_data"
        self._events = None

    def attach_events(self, events) -> None:
        """Forward quarantines to an :class:`~repro.obs.events.EventLog`.

        The engine attaches the session's telemetry event log here so
        every quarantined artifact shows up as a ``storage.quarantined``
        event; without an attachment quarantines are logged only.
        """
        self._events = events

    def _quarantine(self, path: Path, reason: str) -> Path:
        target = storage.quarantine(path, reason)
        if self._events is not None:
            self._events.append("storage.quarantined", path=str(path),
                                quarantined=str(target), reason=reason)
        return target

    @property
    def root(self) -> Path:
        """The ``parmonc_data`` directory path."""
        return self._root

    @property
    def results_dir(self) -> Path:
        """``parmonc_data/results``."""
        return self._root / "results"

    @property
    def savepoints_dir(self) -> Path:
        """``parmonc_data/savepoints`` (per-processor subtotals)."""
        return self._root / "savepoints"

    @property
    def telemetry_dir(self) -> Path:
        """``parmonc_data/telemetry`` (events.jsonl + metrics.json).

        Created lazily by :class:`repro.obs.telemetry.RunTelemetry` when
        a run enables telemetry; merely reading the property never
        touches the filesystem.
        """
        return self._root / "telemetry"

    def has_telemetry(self) -> bool:
        """Whether a telemetry-enabled run left artifacts behind."""
        return self.telemetry_dir.exists() and any(
            self.telemetry_dir.iterdir())

    def clear_telemetry(self) -> None:
        """Remove telemetry artifacts (fresh runs start a fresh record).

        Handles nested directories: files anywhere under ``telemetry/``
        are removed and emptied subdirectories are dropped, leaving the
        ``telemetry`` directory itself in place.
        """
        if not self.telemetry_dir.exists():
            return
        for path in sorted(self.telemetry_dir.rglob("*"), reverse=True):
            if path.is_dir():
                try:
                    path.rmdir()
                except OSError:  # pragma: no cover - non-empty race
                    pass
            else:
                path.unlink()

    @property
    def savepoint_path(self) -> Path:
        """``parmonc_data/savepoint.json`` (merged snapshot)."""
        return self._root / "savepoint.json"

    @property
    def registry_path(self) -> Path:
        """``parmonc_data/parmonc_exp.dat`` (experiment registry)."""
        return self._root / "parmonc_exp.dat"

    def ensure(self) -> "DataDirectory":
        """Create the directory tree if missing; return self."""
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.savepoints_dir.mkdir(parents=True, exist_ok=True)
        return self

    def sweep_temp_files(self) -> list[Path]:
        """Remove stale ``*.tmp`` files a crashed writer left behind.

        Called at session start and by ``manaver``; a temp file only
        survives a crash between write and rename, and by then it is
        garbage by definition (the rename never happened).
        """
        return storage.sweep_temp_files(self._root)

    def quarantined_files(self) -> list[Path]:
        """Every ``*.corrupt`` artifact set aside under this directory."""
        return storage.quarantined_files(self._root)

    # ------------------------------------------------------------------
    # Results

    def write_results(self, estimates: Estimates, *, seqnum: int,
                      processors: int, sessions: int,
                      elapsed: float | None = None) -> None:
        """Write ``func.dat``, ``func_ci.dat`` and ``func_log.dat``.

        Each file is written atomically, so a kill mid-save can never
        leave a torn matrix for :meth:`read_mean_matrix` to load.
        """
        self.ensure()
        storage.atomic_write_text(self.results_dir / "func.dat",
                                  render_mean_matrix(estimates),
                                  label="results.func")
        storage.atomic_write_text(self.results_dir / "func_ci.dat",
                                  render_ci_table(estimates),
                                  label="results.func_ci")
        storage.atomic_write_text(
            self.results_dir / "func_log.dat",
            render_log(estimates, seqnum=seqnum, processors=processors,
                       sessions=sessions, elapsed=elapsed),
            label="results.func_log")

    def read_mean_matrix(self) -> np.ndarray:
        """Read back the matrix of sample means from ``func.dat``."""
        path = self.results_dir / "func.dat"
        if not path.exists():
            raise ResumeError(f"no results file at {path}")
        return np.loadtxt(path, ndmin=2)

    def read_log(self) -> dict[str, str]:
        """Read ``func_log.dat`` into a key-value dictionary."""
        path = self.results_dir / "func_log.dat"
        if not path.exists():
            raise ResumeError(f"no log file at {path}")
        entries = {}
        for line in path.read_text().splitlines():
            if ":" in line:
                key, _, value = line.partition(":")
                entries[key.strip()] = value.strip()
        return entries

    # ------------------------------------------------------------------
    # Merged save-point (resume source)

    def save_savepoint(self, snapshot: MomentSnapshot, *,
                       used_seqnums: tuple[int, ...],
                       sessions: int,
                       manifest: dict | None = None,
                       statistics: dict[str, Statistic] | None = None,
                       extra_payloads: dict[str, dict] | None = None
                       ) -> None:
        """Persist the merged snapshot and session metadata durably.

        The save-point goes through the atomic, checksummed artifact
        writer; ``manifest`` (see
        :func:`repro.runtime.resume.build_manifest`) records the
        writing session's processor count and RNG leap parameters so a
        later resume can refuse a mismatched generator hierarchy.

        Args:
            snapshot: The merged moment snapshot.
            used_seqnums: Every burnt experiments subsequence.
            sessions: Sessions folded into the snapshot.
            manifest: The writing session's manifest.
            statistics: Extra merged statistics to store beside the
                moments, keyed by kind.
            extra_payloads: Already-serialized statistic payloads to
                carry forward verbatim — how unknown kinds loaded from
                an older save-point survive a rewrite untouched.
        """
        self.ensure()
        payload = {
            "snapshot": snapshot.to_dict(),
            "shape": list(snapshot.shape),
            "used_seqnums": sorted(set(int(s) for s in used_seqnums)),
            "sessions": int(sessions),
        }
        if manifest is not None:
            payload["manifest"] = manifest
        serialized = dict(extra_payloads or {})
        serialized.update(payload_map(statistics or {}))
        if serialized:
            payload["statistics"] = serialized
        storage.write_artifact(self.savepoint_path, SAVEPOINT_FORMAT,
                               payload, version=SAVEPOINT_VERSION,
                               label="savepoint")

    def load_savepoint(self) -> tuple[MomentSnapshot, SavepointMeta]:
        """Load the merged snapshot saved by a previous session.

        A save-point that fails its checksum (or cannot be parsed) is
        quarantined as ``savepoint.json.corrupt`` before the error is
        raised, so the next attempt is not poisoned by the same file.

        Raises:
            ResumeError: If no save-point exists, it is corrupt (now
                quarantined), or it was written by a newer format
                version.
        """
        if not self.savepoint_path.exists():
            raise ResumeError(
                f"no previous simulation found at {self.savepoint_path}; "
                f"start with res=0")
        try:
            payload, _version = storage.read_artifact(
                self.savepoint_path, SAVEPOINT_FORMAT,
                max_version=SAVEPOINT_VERSION)
        except ArtifactVersionError as exc:
            raise ResumeError(str(exc)) from exc
        except CorruptArtifactError as exc:
            target = self._quarantine(self.savepoint_path, str(exc))
            raise ResumeError(
                f"corrupted save-point at {self.savepoint_path}: {exc} "
                f"(quarantined as {target.name}; recover the per-"
                f"processor subtotals with manaver)") from exc
        try:
            snapshot = MomentSnapshot.from_dict(payload["snapshot"])
            manifest = payload.get("manifest")
            if manifest is not None and not isinstance(manifest, dict):
                raise ValueError("manifest is not an object")
            statistics, unknown_payloads = _parse_statistics(
                payload, self.savepoint_path)
            meta = SavepointMeta(
                shape=tuple(payload["shape"]),
                used_seqnums=tuple(payload["used_seqnums"]),
                sessions=int(payload["sessions"]),
                manifest=manifest,
                statistics=statistics,
                unknown_payloads=unknown_payloads)
        except (KeyError, TypeError, ValueError,
                ConfigurationError) as exc:
            target = self._quarantine(self.savepoint_path, str(exc))
            raise ResumeError(
                f"corrupted save-point at {self.savepoint_path}: {exc} "
                f"(quarantined as {target.name})") from exc
        return snapshot, meta

    def has_savepoint(self) -> bool:
        """Whether a previous simulation left a merged save-point."""
        return self.savepoint_path.exists()

    # ------------------------------------------------------------------
    # Per-processor subtotals (manaver input)

    def processor_savepoint_path(self, rank: int) -> Path:
        """Path of processor ``rank``'s subtotal file."""
        return self.savepoints_dir / f"processor_{rank:05d}.json"

    def save_processor_snapshot(self, rank: int, snapshot: MomentSnapshot,
                                *, session: int | None = None,
                                statistics: dict[str, Statistic] | None
                                = None) -> None:
        """Persist one processor's latest subtotal snapshot durably.

        ``session`` tags the subtotal with the session index that
        produced it.  The tag is what lets ``manaver`` tell a subtotal
        that is *already folded into* the merged save-point (a crash
        hit between the save-point rename and the subtotal cleanup)
        from one that still needs recovering — without it, that crash
        window would double-count every realization of the session.

        ``statistics`` mirrors the extra cumulative statistics the
        worker's latest message carried, so ``manaver`` recovers every
        declared statistic, not just the moments.
        """
        self.ensure()
        payload: dict = {"rank": rank, "snapshot": snapshot.to_dict()}
        if session is not None:
            payload["session"] = int(session)
        if statistics:
            payload["statistics"] = payload_map(statistics)
        storage.write_artifact(
            self.processor_savepoint_path(rank), PROCESSOR_FORMAT,
            payload, version=SAVEPOINT_VERSION, label="processor")

    def load_processor_subtotals(self, *, absorbed_sessions: int | None
                                 = None) -> dict[int, ProcessorSubtotal]:
        """Load every healthy per-processor subtotal present on disk.

        A torn or checksum-failing subtotal is quarantined and *skipped*
        with a warning — one bad processor file must not make the whole
        ``manaver`` recovery abort and lose every other processor's
        realizations.  Callers can inspect :meth:`quarantined_files`
        afterwards.

        Args:
            absorbed_sessions: When given, subtotals tagged with a
                session index ``<=`` this value are skipped: the merged
                save-point with ``sessions == absorbed_sessions``
                already contains them (the writing session finalized
                but crashed before cleaning its subtotals up).
                Untagged (legacy) subtotals are always returned.
        """
        subtotals: dict[int, ProcessorSubtotal] = {}
        if not self.savepoints_dir.exists():
            return subtotals
        for path in sorted(self.savepoints_dir.glob("processor_*.json")):
            try:
                payload, _version = storage.read_artifact(
                    path, PROCESSOR_FORMAT, max_version=SAVEPOINT_VERSION)
                session = payload.get("session")
                if (absorbed_sessions is not None and session is not None
                        and int(session) <= absorbed_sessions):
                    _logger.debug(
                        "subtotal %s already absorbed by the merged "
                        "save-point (session %s)", path.name, session)
                    continue
                statistics, _unknown = _parse_statistics(payload, path)
                rank = int(payload["rank"])
                subtotals[rank] = ProcessorSubtotal(
                    rank=rank,
                    snapshot=MomentSnapshot.from_dict(payload["snapshot"]),
                    statistics=statistics,
                    session=int(session) if session is not None else None)
            except ArtifactVersionError:
                raise
            except (CorruptArtifactError, KeyError, TypeError, ValueError,
                    ConfigurationError) as exc:
                self._quarantine(path, str(exc))
                _logger.warning(
                    "skipping corrupt processor save-point %s: %s",
                    path.name, exc)
        return subtotals

    def load_processor_snapshots(self, *, absorbed_sessions: int | None
                                 = None) -> dict[int, MomentSnapshot]:
        """Moment-snapshot view of :meth:`load_processor_subtotals`."""
        return {rank: subtotal.snapshot for rank, subtotal
                in self.load_processor_subtotals(
                    absorbed_sessions=absorbed_sessions).items()}

    def clear_processor_snapshots(self) -> None:
        """Remove per-processor subtotals (on a clean run completion)."""
        if self.savepoints_dir.exists():
            for path in self.savepoints_dir.glob("processor_*.json"):
                path.unlink()

    # ------------------------------------------------------------------
    # Experiment registry

    def register_experiment(self, *, seqnum: int, processors: int,
                            maxsv: int, res: int) -> None:
        """Append one line per started experiment to ``parmonc_exp.dat``.

        The registry is append-only (each line is self-contained, and
        readers tolerate a truncated final line), so it does not go
        through the rename-based writer; the appended line is fsynced
        because it is the one record of a burnt ``seqnum`` that must
        survive a crash *before* the first save-point.
        """
        self.ensure()
        line = (f"{_timestamp()} seqnum={seqnum} processors={processors} "
                f"maxsv={maxsv} res={res}\n")
        with self.registry_path.open("a") as handle:
            handle.write(line)
            handle.flush()
            try:
                os.fsync(handle.fileno())
            except OSError:  # pragma: no cover - exotic filesystem
                pass

    def read_registry(self) -> list[str]:
        """Return the experiment registry lines (empty if none)."""
        if not self.registry_path.exists():
            return []
        return self.registry_path.read_text().splitlines()


def write_genparam_file(workdir: Path | str, experiment_exponent: int,
                        processor_exponent: int,
                        realization_exponent: int,
                        multipliers: tuple[int, int, int]) -> Path:
    """Write ``parmonc_genparam.dat`` in the user's working directory.

    The file records both the leap exponents and the computed multipliers
    ``A(n_e), A(n_p), A(n_r)``; PARMONC routines pick it up in preference
    to the defaults (§3.5).
    """
    path = Path(workdir) / GENPARAM_FILENAME
    content = (
        f"ne_exponent: {experiment_exponent}\n"
        f"np_exponent: {processor_exponent}\n"
        f"nr_exponent: {realization_exponent}\n"
        f"A_ne: {multipliers[0]}\n"
        f"A_np: {multipliers[1]}\n"
        f"A_nr: {multipliers[2]}\n")
    storage.atomic_write_text(path, content, label="genparam")
    return path


def read_genparam_file(workdir: Path | str) -> dict[str, int] | None:
    """Read ``parmonc_genparam.dat`` if present; None when absent.

    Returns a dict with keys ``ne_exponent``, ``np_exponent``,
    ``nr_exponent``, ``A_ne``, ``A_np``, ``A_nr``.
    """
    path = Path(workdir) / GENPARAM_FILENAME
    if not path.exists():
        return None
    values: dict[str, int] = {}
    for line in path.read_text().splitlines():
        if ":" not in line:
            continue
        key, _, raw = line.partition(":")
        try:
            values[key.strip()] = int(raw.strip())
        except ValueError as exc:
            raise ConfigurationError(
                f"malformed {GENPARAM_FILENAME} line: {line!r}") from exc
    required = {"ne_exponent", "np_exponent", "nr_exponent",
                "A_ne", "A_np", "A_nr"}
    missing = required - values.keys()
    if missing:
        raise ConfigurationError(
            f"{GENPARAM_FILENAME} is missing keys: {sorted(missing)}")
    return values


def genparam_fingerprint(workdir: Path | str) -> str | None:
    """SHA-256 fingerprint of ``parmonc_genparam.dat``; None when absent.

    Recorded in the session manifest so a resumed session can tell
    whether the generator-parameter file changed between sessions.
    """
    path = Path(workdir) / GENPARAM_FILENAME
    if not path.exists():
        return None
    return hashlib.sha256(path.read_bytes()).hexdigest()
