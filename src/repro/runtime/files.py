"""The ``parmonc_data`` directory: result files and save-points (§3.6).

Layout under the user's working directory::

    parmonc_data/
      results/
        func.dat         matrix of sample means
        func_ci.dat      means + absolute/relative errors + variances
        func_log.dat     run log: volume, mean time, error upper bounds
      savepoints/
        processor_<m>.json   latest subtotal snapshot of processor m
      telemetry/
        events.jsonl     structured run record (telemetry-enabled runs)
        metrics.json     final metrics snapshot (see docs/observability.md)
      savepoint.json     merged snapshot + session metadata (resume source)
      parmonc_exp.dat    registry of stochastic experiments

The per-processor save-points exist so that ``manaver`` can recover the
full sample after an abrupt job termination, exactly as in §3.4.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError, ResumeError
from repro.stats.accumulator import MomentSnapshot
from repro.stats.estimators import Estimates

__all__ = [
    "DataDirectory",
    "render_mean_matrix",
    "render_ci_table",
    "render_log",
    "GENPARAM_FILENAME",
    "read_genparam_file",
    "write_genparam_file",
]

GENPARAM_FILENAME = "parmonc_genparam.dat"

_SAVEPOINT_VERSION = 1


def _timestamp() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def render_mean_matrix(estimates: Estimates) -> str:
    """Render ``func.dat``: the matrix of sample means, one row per line."""
    lines = []
    for row in estimates.mean:
        lines.append(" ".join(f"{value: .15e}" for value in row))
    return "\n".join(lines) + "\n"


def render_ci_table(estimates: Estimates) -> str:
    """Render ``func_ci.dat``: per-entry mean, errors and variance.

    Columns: row index, column index, sample mean, absolute error,
    relative error (percent), sample variance.
    """
    lines = ["# i j mean abs_error rel_error_percent variance"]
    nrow, ncol = estimates.shape
    for i in range(nrow):
        for j in range(ncol):
            lines.append(
                f"{i + 1} {j + 1} "
                f"{estimates.mean[i, j]: .15e} "
                f"{estimates.abs_error[i, j]: .15e} "
                f"{estimates.rel_error[i, j]: .6e} "
                f"{estimates.variance[i, j]: .15e}")
    return "\n".join(lines) + "\n"


def render_log(estimates: Estimates, *, seqnum: int, processors: int,
               sessions: int, elapsed: float | None = None) -> str:
    """Render ``func_log.dat``: summary information about the simulation."""
    lines = [
        f"total_sample_volume: {estimates.volume}",
        f"mean_time_per_realization_sec: {estimates.mean_time:.6e}",
        f"abs_error_upper_bound: {estimates.abs_error_max:.6e}",
        f"rel_error_upper_bound_percent: {estimates.rel_error_max:.6e}",
        f"variance_upper_bound: {estimates.variance_max:.6e}",
        f"matrix_shape: {estimates.shape[0]} {estimates.shape[1]}",
        f"seqnum: {seqnum}",
        f"processors: {processors}",
        f"sessions: {sessions}",
        f"written_at: {_timestamp()}",
    ]
    if elapsed is not None:
        lines.append(f"elapsed_sec: {elapsed:.6e}")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class _SavepointMeta:
    """Metadata stored beside the merged snapshot."""

    shape: tuple[int, int]
    used_seqnums: tuple[int, ...]
    sessions: int


class DataDirectory:
    """Handle on a ``parmonc_data`` directory.

    Args:
        workdir: The user's working directory; ``parmonc_data`` is
            created beneath it lazily.
    """

    def __init__(self, workdir: Path | str) -> None:
        self._root = Path(workdir) / "parmonc_data"

    @property
    def root(self) -> Path:
        """The ``parmonc_data`` directory path."""
        return self._root

    @property
    def results_dir(self) -> Path:
        """``parmonc_data/results``."""
        return self._root / "results"

    @property
    def savepoints_dir(self) -> Path:
        """``parmonc_data/savepoints`` (per-processor subtotals)."""
        return self._root / "savepoints"

    @property
    def telemetry_dir(self) -> Path:
        """``parmonc_data/telemetry`` (events.jsonl + metrics.json).

        Created lazily by :class:`repro.obs.telemetry.RunTelemetry` when
        a run enables telemetry; merely reading the property never
        touches the filesystem.
        """
        return self._root / "telemetry"

    def has_telemetry(self) -> bool:
        """Whether a telemetry-enabled run left artifacts behind."""
        return self.telemetry_dir.exists() and any(
            self.telemetry_dir.iterdir())

    def clear_telemetry(self) -> None:
        """Remove telemetry artifacts (fresh runs start a fresh record)."""
        if self.telemetry_dir.exists():
            for path in self.telemetry_dir.iterdir():
                if path.is_file():
                    path.unlink()

    @property
    def savepoint_path(self) -> Path:
        """``parmonc_data/savepoint.json`` (merged snapshot)."""
        return self._root / "savepoint.json"

    @property
    def registry_path(self) -> Path:
        """``parmonc_data/parmonc_exp.dat`` (experiment registry)."""
        return self._root / "parmonc_exp.dat"

    def ensure(self) -> "DataDirectory":
        """Create the directory tree if missing; return self."""
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.savepoints_dir.mkdir(parents=True, exist_ok=True)
        return self

    # ------------------------------------------------------------------
    # Results

    def write_results(self, estimates: Estimates, *, seqnum: int,
                      processors: int, sessions: int,
                      elapsed: float | None = None) -> None:
        """Write ``func.dat``, ``func_ci.dat`` and ``func_log.dat``."""
        self.ensure()
        (self.results_dir / "func.dat").write_text(
            render_mean_matrix(estimates))
        (self.results_dir / "func_ci.dat").write_text(
            render_ci_table(estimates))
        (self.results_dir / "func_log.dat").write_text(
            render_log(estimates, seqnum=seqnum, processors=processors,
                       sessions=sessions, elapsed=elapsed))

    def read_mean_matrix(self) -> np.ndarray:
        """Read back the matrix of sample means from ``func.dat``."""
        path = self.results_dir / "func.dat"
        if not path.exists():
            raise ResumeError(f"no results file at {path}")
        return np.loadtxt(path, ndmin=2)

    def read_log(self) -> dict[str, str]:
        """Read ``func_log.dat`` into a key-value dictionary."""
        path = self.results_dir / "func_log.dat"
        if not path.exists():
            raise ResumeError(f"no log file at {path}")
        entries = {}
        for line in path.read_text().splitlines():
            if ":" in line:
                key, _, value = line.partition(":")
                entries[key.strip()] = value.strip()
        return entries

    # ------------------------------------------------------------------
    # Merged save-point (resume source)

    def save_savepoint(self, snapshot: MomentSnapshot, *,
                       used_seqnums: tuple[int, ...],
                       sessions: int) -> None:
        """Persist the merged snapshot and session metadata atomically."""
        self.ensure()
        payload = {
            "version": _SAVEPOINT_VERSION,
            "snapshot": snapshot.to_dict(),
            "shape": list(snapshot.shape),
            "used_seqnums": sorted(set(int(s) for s in used_seqnums)),
            "sessions": int(sessions),
            "written_at": _timestamp(),
        }
        temp = self.savepoint_path.with_suffix(".json.tmp")
        temp.write_text(json.dumps(payload))
        temp.replace(self.savepoint_path)

    def load_savepoint(self) -> tuple[MomentSnapshot, _SavepointMeta]:
        """Load the merged snapshot saved by a previous session.

        Raises:
            ResumeError: If no save-point exists or it is malformed.
        """
        if not self.savepoint_path.exists():
            raise ResumeError(
                f"no previous simulation found at {self.savepoint_path}; "
                f"start with res=0")
        try:
            payload = json.loads(self.savepoint_path.read_text())
            snapshot = MomentSnapshot.from_dict(payload["snapshot"])
            meta = _SavepointMeta(
                shape=tuple(payload["shape"]),
                used_seqnums=tuple(payload["used_seqnums"]),
                sessions=int(payload["sessions"]))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                ConfigurationError) as exc:
            raise ResumeError(
                f"corrupted save-point at {self.savepoint_path}: "
                f"{exc}") from exc
        return snapshot, meta

    def has_savepoint(self) -> bool:
        """Whether a previous simulation left a merged save-point."""
        return self.savepoint_path.exists()

    # ------------------------------------------------------------------
    # Per-processor subtotals (manaver input)

    def processor_savepoint_path(self, rank: int) -> Path:
        """Path of processor ``rank``'s subtotal file."""
        return self.savepoints_dir / f"processor_{rank:05d}.json"

    def save_processor_snapshot(self, rank: int,
                                snapshot: MomentSnapshot) -> None:
        """Persist one processor's latest subtotal snapshot atomically."""
        self.ensure()
        path = self.processor_savepoint_path(rank)
        temp = path.with_suffix(".json.tmp")
        temp.write_text(json.dumps({
            "rank": rank,
            "snapshot": snapshot.to_dict(),
            "written_at": _timestamp(),
        }))
        temp.replace(path)

    def load_processor_snapshots(self) -> dict[int, MomentSnapshot]:
        """Load every per-processor subtotal present on disk."""
        snapshots: dict[int, MomentSnapshot] = {}
        if not self.savepoints_dir.exists():
            return snapshots
        for path in sorted(self.savepoints_dir.glob("processor_*.json")):
            try:
                payload = json.loads(path.read_text())
                snapshots[int(payload["rank"])] = MomentSnapshot.from_dict(
                    payload["snapshot"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                    ConfigurationError) as exc:
                raise ResumeError(
                    f"corrupted processor save-point {path}: {exc}") from exc
        return snapshots

    def clear_processor_snapshots(self) -> None:
        """Remove per-processor subtotals (on a clean run completion)."""
        if self.savepoints_dir.exists():
            for path in self.savepoints_dir.glob("processor_*.json"):
                path.unlink()

    # ------------------------------------------------------------------
    # Experiment registry

    def register_experiment(self, *, seqnum: int, processors: int,
                            maxsv: int, res: int) -> None:
        """Append one line per started experiment to ``parmonc_exp.dat``."""
        self.ensure()
        line = (f"{_timestamp()} seqnum={seqnum} processors={processors} "
                f"maxsv={maxsv} res={res}\n")
        with self.registry_path.open("a") as handle:
            handle.write(line)

    def read_registry(self) -> list[str]:
        """Return the experiment registry lines (empty if none)."""
        if not self.registry_path.exists():
            return []
        return self.registry_path.read_text().splitlines()


def write_genparam_file(workdir: Path | str, experiment_exponent: int,
                        processor_exponent: int,
                        realization_exponent: int,
                        multipliers: tuple[int, int, int]) -> Path:
    """Write ``parmonc_genparam.dat`` in the user's working directory.

    The file records both the leap exponents and the computed multipliers
    ``A(n_e), A(n_p), A(n_r)``; PARMONC routines pick it up in preference
    to the defaults (§3.5).
    """
    path = Path(workdir) / GENPARAM_FILENAME
    content = (
        f"ne_exponent: {experiment_exponent}\n"
        f"np_exponent: {processor_exponent}\n"
        f"nr_exponent: {realization_exponent}\n"
        f"A_ne: {multipliers[0]}\n"
        f"A_np: {multipliers[1]}\n"
        f"A_nr: {multipliers[2]}\n")
    path.write_text(content)
    return path


def read_genparam_file(workdir: Path | str) -> dict[str, int] | None:
    """Read ``parmonc_genparam.dat`` if present; None when absent.

    Returns a dict with keys ``ne_exponent``, ``np_exponent``,
    ``nr_exponent``, ``A_ne``, ``A_np``, ``A_nr``.
    """
    path = Path(workdir) / GENPARAM_FILENAME
    if not path.exists():
        return None
    values: dict[str, int] = {}
    for line in path.read_text().splitlines():
        if ":" not in line:
            continue
        key, _, raw = line.partition(":")
        try:
            values[key.strip()] = int(raw.strip())
        except ValueError as exc:
            raise ConfigurationError(
                f"malformed {GENPARAM_FILENAME} line: {line!r}") from exc
    required = {"ne_exponent", "np_exponent", "nr_exponent",
                "A_ne", "A_np", "A_nr"}
    missing = required - values.keys()
    if missing:
        raise ConfigurationError(
            f"{GENPARAM_FILENAME} is missing keys: {sorted(missing)}")
    return values
