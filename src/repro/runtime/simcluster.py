"""Simulated-cluster backend: the full protocol in virtual time.

Wraps :class:`repro.cluster.simulation.ClusterSimulation` in the same
engine-driven session lifecycle as the other backends (resume, result
files, save-points), so a run "on 512 processors" is one function call
on a laptop.  The returned :class:`RunResult` carries the virtual
``T_comp`` in :attr:`~repro.runtime.result.RunResult.virtual_time`.

With telemetry enabled the whole record — spans, events, metrics — is
stamped in virtual seconds: the simulation's event queue *is* the
telemetry clock.

Injected node failures (:attr:`~repro.cluster.simulation.ClusterSpec
.failures`) flow through the same engine fault path as real dead
processes: under ``on_worker_death="fail"`` the run tolerates the loss
exactly as §2.2 models it, under ``"reassign"`` the engine reissues the
undelivered quota to a fresh simulated node — a deterministic rehearsal
of the multiprocess recovery path.
"""

from __future__ import annotations

from repro.cluster.simulation import ClusterSimulation, ClusterSpec
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.engine import (
    Engine,
    EngineBackend,
    WorkerAssignment,
    WorkerDeath,
    register_backend,
)
from repro.runtime.messages import MomentMessage
from repro.runtime.result import RunResult
from repro.runtime.worker import RealizationRoutine

__all__ = ["SimclusterBackend", "run_simcluster"]


@register_backend("simcluster")
class SimclusterBackend(EngineBackend):
    """Drive one :class:`ClusterSimulation` through the shared engine.

    Args:
        cluster_spec: Cluster hardware model; defaults to the paper's
            test rig (``tau = 7.7 s``, ~1 GB/s interconnect).
        execute_realizations: When False, realizations are only
            accounted for in time — used by pure scaling studies, where
            estimates would be meaningless zeros anyway.
        quotas: Optional per-rank realization quotas (see
            :func:`repro.cluster.simulation.proportional_quotas`);
            defaults to the config's even split.
        scheduling: ``"static"`` quotas or ``"dynamic"``
            self-scheduling (workers draw work until ``maxsv`` is
            started cluster-wide).
    """

    name = "simcluster"
    # Per-message subtotal persistence would dominate a timing study;
    # the merged save-point at session end still supports resumption.
    persist_subtotals = False

    def __init__(self, cluster_spec: ClusterSpec | None = None,
                 execute_realizations: bool = True,
                 quotas: list[int] | None = None,
                 scheduling: str = "static") -> None:
        super().__init__()
        self._spec = (cluster_spec if cluster_spec is not None
                      else ClusterSpec())
        self._execute = execute_realizations
        self._quotas = quotas
        self._scheduling = scheduling
        self._simulation: ClusterSimulation | None = None
        self._idle = False
        self._reported: set[int] = set()

    def clock(self) -> float:
        """The simulation's virtual time (0 until the cluster exists)."""
        simulation = self._simulation
        return simulation.now if simulation is not None else 0.0

    def telemetry_epoch(self, started: float) -> float:
        return 0.0

    def plan(self) -> list[WorkerAssignment]:
        if self._scheduling == "dynamic":
            # Self-scheduling: no per-rank quota exists to reassign.
            return [WorkerAssignment(rank, None)
                    for rank in range(self.config.processors)]
        if self._quotas is not None:
            return [WorkerAssignment(rank, quota)
                    for rank, quota in enumerate(self._quotas)]
        return super().plan()

    def spawn(self, assignments) -> None:
        if self._simulation is None:
            self._simulation = ClusterSimulation(
                self.config, self._spec, self.collector,
                routine=self.routine if self._execute else None,
                quotas=self._quotas, scheduling=self._scheduling,
                telemetry=self.engine.telemetry)
            self._simulation.start()
        else:
            for assignment in assignments:
                self._simulation.add_worker(assignment.rank,
                                            assignment.quota)
        self._idle = False
        return None

    def poll(self, timeout: float) -> MomentMessage | None:
        """Drain the event queue; messages reach the collector in-sim."""
        if not self._idle:
            self._simulation.run_until_idle()
            self._idle = True
        return None

    def reap(self) -> list[WorkerDeath]:
        """Report injected node failures — only under ``"reassign"``.

        Under the default ``"fail"`` policy the simulated cluster keeps
        its historical §2.2 semantics: a failed node's undelivered work
        is simply lost, the run completes with a smaller sample, and
        nothing raises.
        """
        if self.config.on_worker_death != "reassign":
            return []
        deaths = [WorkerDeath(rank, None, detail="injected node failure")
                  for rank in self._simulation.dead_ranks()
                  if rank not in self._reported]
        self._reported.update(death.rank for death in deaths)
        return deaths

    @property
    def done(self) -> bool:
        return self._idle

    def finish(self) -> None:
        result = self._simulation.finish()
        self._cluster_result = result
        self.virtual_time = result.t_comp

    def per_rank_volumes(self, collector: Collector, ranks) -> dict:
        # The simulator's own accounting: computed volumes, including
        # work a failed node computed but never delivered.
        return self._cluster_result.per_rank_volumes

    def session_volume(self, collector: Collector) -> int:
        return self._cluster_result.total_volume


def run_simcluster(routine: RealizationRoutine | None, config: RunConfig,
                   spec: ClusterSpec | None = None,
                   use_files: bool = True,
                   execute_realizations: bool = True,
                   quotas: list[int] | None = None,
                   scheduling: str = "static") -> RunResult:
    """Run one session on the discrete-event cluster backend.

    Args:
        routine: User realization routine; required when
            ``execute_realizations`` is True.
        config: Run configuration; ``time_limit`` is interpreted in
            *virtual* seconds (the cluster job limit).
        spec: Cluster hardware model; defaults to the paper's test rig
            (``tau = 7.7 s``, ~1 GB/s interconnect).
        use_files: Write result files and save-points.
        execute_realizations: When False, realizations are only
            accounted for in time — used by pure scaling studies, where
            estimates would be meaningless zeros anyway.
        quotas: Optional per-rank realization quotas (see
            :func:`repro.cluster.simulation.proportional_quotas`);
            defaults to the config's even split.
        scheduling: ``"static"`` quotas or ``"dynamic"``
            self-scheduling (workers draw work until ``maxsv`` is
            started cluster-wide).

    Returns:
        A :class:`RunResult` with ``virtual_time`` set to ``T_comp``.
    """
    backend = SimclusterBackend(cluster_spec=spec,
                                execute_realizations=execute_realizations,
                                quotas=quotas, scheduling=scheduling)
    return Engine(backend, config, use_files=use_files).run(routine)
