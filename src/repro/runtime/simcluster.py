"""Simulated-cluster backend: the full protocol in virtual time.

Wraps :class:`repro.cluster.simulation.ClusterSimulation` in the same
session lifecycle as the other backends (resume, result files,
save-points), so a run "on 512 processors" is one function call on a
laptop.  The returned :class:`RunResult` carries the virtual ``T_comp``
in :attr:`~repro.runtime.result.RunResult.virtual_time`.

With telemetry enabled the whole record — spans, events, metrics — is
stamped in virtual seconds: the simulation's event queue *is* the
telemetry clock.
"""

from __future__ import annotations

import time

from repro.cluster.simulation import ClusterSimulation, ClusterSpec
from repro.runtime.bootstrap import start_session
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.resume import finalize_session
from repro.runtime.result import RunResult
from repro.runtime.telemetry_support import open_run_telemetry
from repro.runtime.worker import RealizationRoutine

__all__ = ["run_simcluster"]


def run_simcluster(routine: RealizationRoutine | None, config: RunConfig,
                   spec: ClusterSpec | None = None,
                   use_files: bool = True,
                   execute_realizations: bool = True,
                   quotas: list[int] | None = None,
                   scheduling: str = "static") -> RunResult:
    """Run one session on the discrete-event cluster backend.

    Args:
        routine: User realization routine; required when
            ``execute_realizations`` is True.
        config: Run configuration; ``time_limit`` is interpreted in
            *virtual* seconds (the cluster job limit).
        spec: Cluster hardware model; defaults to the paper's test rig
            (``tau = 7.7 s``, ~1 GB/s interconnect).
        use_files: Write result files and save-points.
        execute_realizations: When False, realizations are only
            accounted for in time — used by pure scaling studies, where
            estimates would be meaningless zeros anyway.
        quotas: Optional per-rank realization quotas (see
            :func:`repro.cluster.simulation.proportional_quotas`);
            defaults to the config's even split.
        scheduling: ``"static"`` quotas or ``"dynamic"``
            self-scheduling (workers draw work until ``maxsv`` is
            started cluster-wide).

    Returns:
        A :class:`RunResult` with ``virtual_time`` set to ``T_comp``.
    """
    started = time.monotonic()
    if spec is None:
        spec = ClusterSpec()
    data, state = start_session(config, use_files)
    # The telemetry clock reads the simulation's virtual time; the cell
    # closes the construction cycle (telemetry -> collector -> sim).
    simulation_cell: list[ClusterSimulation] = []
    telemetry = open_run_telemetry(
        config, data, backend="simcluster", epoch=0.0,
        clock=lambda: simulation_cell[0].now if simulation_cell else 0.0)
    # Per-message subtotal persistence would dominate a timing study;
    # the merged save-point at session end still supports resumption.
    collector = Collector(config, state.base, data,
                          sessions=state.session_index,
                          persist_subtotals=False,
                          telemetry=telemetry)
    simulation = ClusterSimulation(
        config, spec, collector,
        routine=routine if execute_realizations else None,
        quotas=quotas, scheduling=scheduling, telemetry=telemetry)
    simulation_cell.append(simulation)
    cluster_result = simulation.run()
    elapsed = time.monotonic() - started
    merged = collector.merged()
    if data is not None:
        collector.save(cluster_result.t_comp, elapsed=elapsed)
        finalize_session(data, state, merged)
    estimates = merged.estimates() if merged.volume > 0 else None
    summary = (telemetry.finalize(elapsed=elapsed,
                                  volume=collector.total_volume,
                                  virtual_time=cluster_result.t_comp)
               if telemetry is not None else None)
    return RunResult(
        estimates=estimates,
        config=config,
        per_rank_volumes=cluster_result.per_rank_volumes,
        session_volume=cluster_result.total_volume,
        total_volume=collector.total_volume,
        elapsed=elapsed,
        virtual_time=cluster_result.t_comp,
        sessions=state.session_index,
        data_dir=data.root if data is not None else None,
        messages_received=collector.receive_count,
        saves_performed=collector.save_count,
        history=collector.history,
        telemetry=summary)
