"""Multiprocess backend: real OS processes and asynchronous messaging.

The moral equivalent of the paper's MPI deployment on one machine: every
worker is a separate process, messages travel through an OS queue, and
the collector (this process) receives them asynchronously — slower
workers simply deliver fewer realizations by the time any given
averaging happens, exercising the unequal-``l_m`` branch of formula (5).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time

from repro.exceptions import BackendError
from repro.runtime.bootstrap import start_session
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.resume import finalize_session
from repro.runtime.result import RunResult
from repro.runtime.worker import RealizationRoutine, run_worker

__all__ = ["run_multiprocess"]

_POLL_SECONDS = 0.05
_JOIN_SECONDS = 10.0


def _worker_entry(routine: RealizationRoutine, config: RunConfig,
                  rank: int, quota: int, outbox, deadline: float | None
                  ) -> None:
    """Worker process body: run the loop, shipping messages via the queue."""
    run_worker(routine, config, rank, quota, send=outbox.put,
               deadline=deadline)


def run_multiprocess(routine: RealizationRoutine, config: RunConfig,
                     use_files: bool = True,
                     start_method: str | None = None) -> RunResult:
    """Run one session with one OS process per simulated processor.

    Args:
        routine: User realization routine; must survive the chosen
            multiprocessing start method ("fork" keeps closures, "spawn"
            requires a picklable module-level function).
        config: The run configuration.
        use_files: Write result files and save-points.
        start_method: Optional multiprocessing start method override.

    Raises:
        BackendError: If a worker dies without delivering its final
            message.
    """
    started = time.monotonic()
    data, state = start_session(config, use_files)
    collector = Collector(config, state.base, data,
                          sessions=state.session_index)
    context = (multiprocessing.get_context(start_method)
               if start_method else multiprocessing.get_context())
    outbox = context.Queue()
    deadline = (started + config.time_limit
                if config.time_limit is not None else None)
    workers = []
    for rank in range(config.processors):
        process = context.Process(
            target=_worker_entry,
            args=(routine, config, rank, config.worker_quota(rank),
                  outbox, deadline),
            daemon=True)
        process.start()
        workers.append(process)
    try:
        while not collector.complete:
            try:
                message = outbox.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                dead = [p for p in workers
                        if not p.is_alive() and p.exitcode not in (0, None)]
                if dead:
                    codes = {p.pid: p.exitcode for p in dead}
                    raise BackendError(
                        f"worker process(es) died before finishing: "
                        f"{codes}")
                continue
            collector.receive(message, time.monotonic())
    finally:
        for process in workers:
            process.join(timeout=_JOIN_SECONDS)
            if process.is_alive():
                process.terminate()
        outbox.close()
    elapsed = time.monotonic() - started
    collector.save(time.monotonic(), elapsed=elapsed)
    merged = collector.merged()
    if data is not None:
        finalize_session(data, state, merged)
        data.clear_processor_snapshots()
    per_rank = {rank: collector.worker_volume(rank)
                for rank in range(config.processors)}
    return RunResult(
        estimates=merged.estimates(),
        config=config,
        per_rank_volumes=per_rank,
        session_volume=collector.session_volume,
        total_volume=collector.total_volume,
        elapsed=elapsed,
        sessions=state.session_index,
        data_dir=data.root if data is not None else None,
        messages_received=collector.receive_count,
        saves_performed=collector.save_count,
        history=collector.history)
