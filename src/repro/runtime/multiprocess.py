"""Multiprocess backend: real OS processes and asynchronous messaging.

The moral equivalent of the paper's MPI deployment on one machine: every
worker is a separate process, messages travel through an OS queue, and
the collector (this process) receives them asynchronously — slower
workers simply deliver fewer realizations by the time any given
averaging happens, exercising the unequal-``l_m`` branch of formula (5).

Worker telemetry (when enabled) piggybacks on the moment messages, so
rank 0 needs no extra IPC channel to know every worker's realization
rate, message count and bytes shipped.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time

from repro.exceptions import BackendError
from repro.obs.telemetry import RunTelemetry, WorkerTelemetry
from repro.runtime.bootstrap import start_session
from repro.runtime.collector import Collector
from repro.runtime.config import RunConfig
from repro.runtime.resume import finalize_session
from repro.runtime.result import RunResult
from repro.runtime.telemetry_support import open_run_telemetry
from repro.runtime.worker import RealizationRoutine, run_worker

__all__ = ["run_multiprocess"]

_POLL_SECONDS = 0.05
_JOIN_SECONDS = 10.0
#: How long a cleanly-exited child may leave its final message in flight
#: before the backend declares it dead (queue feeder threads flush fast;
#: this only bounds the pathological case).
_DEAD_GRACE_SECONDS = 1.0


def _worker_entry(routine: RealizationRoutine, config: RunConfig,
                  rank: int, quota: int, outbox, deadline: float | None
                  ) -> None:
    """Worker process body: run the loop, shipping messages via the queue."""
    telemetry = WorkerTelemetry(rank) if config.telemetry else None
    run_worker(routine, config, rank, quota, send=outbox.put,
               deadline=deadline, telemetry=telemetry)


def _scan_for_dead_workers(workers, collector, suspects: dict[int, float],
                           now: float, telemetry: RunTelemetry | None
                           ) -> None:
    """Raise :class:`BackendError` for children that died short of final.

    A worker that exited with a nonzero code (or a signal) is dead on
    sight.  A worker that exited *cleanly* but whose final message has
    not arrived gets a short grace period — its last message may still
    be crossing the queue's feeder thread — and is declared dead only if
    the silence persists.
    """
    dead: dict[int, int] = {}
    for rank, process in enumerate(workers):
        if process.exitcode is None or rank in collector.final_ranks:
            suspects.pop(rank, None)
            continue
        if process.exitcode != 0:
            dead[rank] = process.exitcode
        else:
            first_seen = suspects.setdefault(rank, now)
            if now - first_seen >= _DEAD_GRACE_SECONDS:
                dead[rank] = process.exitcode
    if not dead:
        return
    if telemetry is not None:
        for rank, exitcode in sorted(dead.items()):
            telemetry.events.append("worker_died", rank=rank,
                                    exitcode=exitcode,
                                    volume=collector.worker_volume(rank))
        telemetry.events.flush()
    described = ", ".join(
        f"rank {rank} (exitcode {exitcode})"
        for rank, exitcode in sorted(dead.items()))
    raise BackendError(
        f"worker process(es) died before delivering a final message: "
        f"{described}")


def run_multiprocess(routine: RealizationRoutine, config: RunConfig,
                     use_files: bool = True,
                     start_method: str | None = None) -> RunResult:
    """Run one session with one OS process per simulated processor.

    Args:
        routine: User realization routine; must survive the chosen
            multiprocessing start method ("fork" keeps closures, "spawn"
            requires a picklable module-level function).
        config: The run configuration.
        use_files: Write result files and save-points.
        start_method: Optional multiprocessing start method override.

    Raises:
        BackendError: If a worker dies without delivering its final
            message — whether it crashed (nonzero exit, signal) or
            exited cleanly without finishing its quota.
    """
    started = time.monotonic()
    data, state = start_session(config, use_files)
    telemetry = open_run_telemetry(config, data, backend="multiprocess",
                                   epoch=started)
    collector = Collector(config, state.base, data,
                          sessions=state.session_index,
                          telemetry=telemetry)
    collector.mark_epoch(started)
    context = (multiprocessing.get_context(start_method)
               if start_method else multiprocessing.get_context())
    outbox = context.Queue()
    deadline = (started + config.time_limit
                if config.time_limit is not None else None)
    workers = []
    for rank in range(config.processors):
        process = context.Process(
            target=_worker_entry,
            args=(routine, config, rank, config.worker_quota(rank),
                  outbox, deadline),
            daemon=True)
        process.start()
        workers.append(process)
        if telemetry is not None:
            telemetry.events.append("worker_start", rank=rank,
                                    quota=config.worker_quota(rank),
                                    pid=process.pid)
    suspects: dict[int, float] = {}
    stale_flagged: set[int] = set()
    stale_after = (3.0 * config.perpass + 1.0
                   if config.perpass > 0 else None)
    drain_started = time.monotonic()
    try:
        while not collector.complete:
            try:
                message = outbox.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                now = time.monotonic()
                _scan_for_dead_workers(workers, collector, suspects, now,
                                       telemetry)
                if telemetry is not None and stale_after is not None:
                    for rank in collector.stale_workers(now, stale_after):
                        if rank not in stale_flagged:
                            stale_flagged.add(rank)
                            seen = collector.last_seen.get(rank)
                            telemetry.events.append(
                                "stale_worker", ts=now, rank=rank,
                                last_seen=(seen - started
                                           if seen is not None else None))
                continue
            now = time.monotonic()
            collector.receive(message, now)
            stale_flagged.discard(message.rank)
            if telemetry is not None and message.final:
                stats = message.metrics or {}
                telemetry.events.append(
                    "worker_final", ts=now, rank=message.rank,
                    volume=message.snapshot.volume,
                    messages=stats.get("messages"),
                    bytes=stats.get("bytes"))
    finally:
        for process in workers:
            process.join(timeout=_JOIN_SECONDS)
            if process.is_alive():
                process.terminate()
        outbox.close()
    if telemetry is not None:
        telemetry.tracer.record("collector.drain", drain_started,
                                time.monotonic(),
                                messages=collector.receive_count)
    elapsed = time.monotonic() - started
    collector.save(time.monotonic(), elapsed=elapsed)
    merged = collector.merged()
    if data is not None:
        finalize_session(data, state, merged)
        data.clear_processor_snapshots()
    per_rank = {rank: collector.worker_volume(rank)
                for rank in range(config.processors)}
    summary = (telemetry.finalize(elapsed=elapsed,
                                  volume=collector.total_volume)
               if telemetry is not None else None)
    return RunResult(
        estimates=merged.estimates(),
        config=config,
        per_rank_volumes=per_rank,
        session_volume=collector.session_volume,
        total_volume=collector.total_volume,
        elapsed=elapsed,
        sessions=state.session_index,
        data_dir=data.root if data is not None else None,
        messages_received=collector.receive_count,
        saves_performed=collector.save_count,
        history=collector.history,
        telemetry=summary)
