"""Multiprocess backend: real OS processes and asynchronous messaging.

The moral equivalent of the paper's MPI deployment on one machine: every
worker is a separate process, messages travel through an OS queue, and
the collector (this process) receives them asynchronously — slower
workers simply deliver fewer realizations by the time any given
averaging happens, exercising the unequal-``l_m`` branch of formula (5).

Worker telemetry (when enabled) piggybacks on the moment messages, so
rank 0 needs no extra IPC channel to know every worker's realization
rate, message count and bytes shipped.

Dead children are detected here and *reported* to the engine, which
applies the run's :attr:`~repro.runtime.config.RunConfig
.on_worker_death` policy — abort (default) or reassign the undelivered
quota to a replacement process on a fresh subsequence.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time

from repro.obs.telemetry import WorkerTelemetry
from repro.runtime.config import RunConfig
from repro.runtime.engine import (
    DrainBuffer,
    Engine,
    EngineBackend,
    WorkerDeath,
    register_backend,
)
from repro.runtime.messages import MomentMessage
from repro.runtime.result import RunResult
from repro.runtime.worker import RealizationRoutine, run_worker

__all__ = ["MultiprocessBackend", "run_multiprocess"]

_JOIN_SECONDS = 10.0


def _worker_entry(routine: RealizationRoutine, config: RunConfig,
                  rank: int, quota: int, outbox, deadline: float | None
                  ) -> None:
    """Worker process body: run the loop, shipping messages via the queue."""
    telemetry = WorkerTelemetry(rank) if config.telemetry else None
    run_worker(routine, config, rank, quota, send=outbox.put,
               deadline=deadline, telemetry=telemetry)


@register_backend("multiprocess")
class MultiprocessBackend(EngineBackend):
    """One OS process per worker, a shared queue back to the collector.

    Args:
        start_method: Optional multiprocessing start method override
            ("fork" keeps closures, "spawn" requires a picklable
            module-level routine).
    """

    name = "multiprocess"
    monitors_staleness = True

    def __init__(self, start_method: str | None = None) -> None:
        super().__init__()
        self._start_method = start_method
        self._context = None
        self._outbox = None
        self._processes: list = []
        self._live: dict[int, object] = {}
        self._suspects: dict[int, float] = {}
        # The fetch closure reads self._outbox at call time (the queue
        # is created lazily on first spawn; tests swap it out).
        self._drained = DrainBuffer(lambda: self._outbox.get_nowait())

    def spawn(self, assignments) -> list[dict]:
        if self._context is None:
            self._context = (
                multiprocessing.get_context(self._start_method)
                if self._start_method else multiprocessing.get_context())
            self._outbox = self._context.Queue()
        extras = []
        for assignment in assignments:
            process = self._context.Process(
                target=_worker_entry,
                args=(self.routine, self.config, assignment.rank,
                      assignment.quota, self._outbox, self.deadline),
                daemon=True)
            process.start()
            self._processes.append(process)
            self._live[assignment.rank] = process
            extras.append({"pid": process.pid})
        return extras

    def poll(self, timeout: float) -> MomentMessage | None:
        message = self._drained.pop()
        if message is not None:
            return message
        try:
            return self._outbox.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def reap(self) -> list[WorkerDeath]:
        """Report children that died short of their final message.

        A worker that exited with a nonzero code (or a signal) is dead
        on sight.  A worker that exited *cleanly* but whose final
        message has not arrived gets ``config.death_grace`` seconds —
        its last message may still be crossing the queue's feeder
        thread — and is declared dead only if the silence persists.

        Before judging anyone, the outbox is drained into the shared
        :class:`~repro.runtime.engine.DrainBuffer`: a slow-but-delivered
        message must reach the collector before its sender can be
        declared dead, and must never burn grace time while it sits in
        the queue.
        """
        if self._drained.drain():
            # Let the engine ingest the buffered messages first; death
            # verdicts resume on the next empty poll.
            return []
        now = self.clock()
        final_ranks = self.collector.final_ranks
        dead: list[WorkerDeath] = []
        for rank, process in list(self._live.items()):
            if process.exitcode is None or rank in final_ranks:
                self._suspects.pop(rank, None)
                if process.exitcode is not None:
                    del self._live[rank]  # finalized and exited: done
                continue
            if process.exitcode != 0:
                dead.append(WorkerDeath(rank, process.exitcode))
            else:
                first_seen = self._suspects.setdefault(rank, now)
                if now - first_seen >= self.config.death_grace:
                    dead.append(WorkerDeath(rank, process.exitcode))
        for death in dead:
            self._live.pop(death.rank, None)
            self._suspects.pop(death.rank, None)
        return dead

    def shutdown(self) -> None:
        for process in self._processes:
            process.join(timeout=_JOIN_SECONDS)
            if process.is_alive():
                process.terminate()
        if self._outbox is not None:
            self._outbox.close()


def run_multiprocess(routine: RealizationRoutine, config: RunConfig,
                     use_files: bool = True,
                     start_method: str | None = None) -> RunResult:
    """Run one session with one OS process per simulated processor.

    Args:
        routine: User realization routine; must survive the chosen
            multiprocessing start method ("fork" keeps closures, "spawn"
            requires a picklable module-level function).
        config: The run configuration.
        use_files: Write result files and save-points.
        start_method: Optional multiprocessing start method override.

    Raises:
        BackendError: If a worker dies without delivering its final
            message and ``config.on_worker_death`` is ``"fail"`` —
            whether it crashed (nonzero exit, signal) or exited cleanly
            without finishing its quota.
    """
    return Engine(MultiprocessBackend(start_method=start_method), config,
                  use_files=use_files).run(routine)
