"""Multiprocess backend: real OS processes and asynchronous messaging.

The moral equivalent of the paper's MPI deployment on one machine: every
worker is a separate process, messages travel through an OS queue, and
the collector (this process) receives them asynchronously — slower
workers simply deliver fewer realizations by the time any given
averaging happens, exercising the unequal-``l_m`` branch of formula (5).

Two scaling knobs reshape the exchange without changing a single
estimate bit (see ``docs/reduction.md``):

* ``config.reduction_fanout`` inserts interior **reducer processes**
  (:mod:`repro.runtime.reduction`): workers report to their subtree's
  reducer, reducers coalesce and forward combined messages upstream,
  and rank 0 serves O(fanout) peers instead of O(M) workers.
* ``config.transport == "shm"`` moves same-host passes off
  pickle-over-``mp.Queue`` onto per-worker shared-memory ring buffers
  (:mod:`repro.runtime.shm`): zero-copy fixed-layout payloads with a
  queue fallback for anything that does not fit a slot.

Worker telemetry (when enabled) piggybacks on the moment messages, so
rank 0 needs no extra IPC channel to know every worker's realization
rate, message count and bytes shipped.

Dead children are detected here and *reported* to the engine, which
applies the run's :attr:`~repro.runtime.config.RunConfig
.on_worker_death` policy — abort (default) or reassign the undelivered
quota to a replacement process on a fresh subsequence.  Dead *reducers*
are handled in place: a reducer holds no state that is not cumulative
in its children's next passes, so under ``"reassign"`` the backend
respawns the node on the same queues and rings and the subtree simply
reattaches.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from dataclasses import replace

from repro.exceptions import BackendError
from repro.obs.telemetry import WorkerTelemetry
from repro.runtime.config import RunConfig
from repro.runtime.engine import (
    DrainBuffer,
    Engine,
    EngineBackend,
    WorkerDeath,
    register_backend,
)
from repro.runtime.messages import CombinedMessage, MomentMessage
from repro.runtime.reduction import ReducerNode, plan_reduction, run_reducer
from repro.runtime.result import RunResult
from repro.runtime.shm import ShmRing, ShmSender, attach_ring, segment_name, \
    sweep_orphans
from repro.runtime.worker import RealizationRoutine, run_worker

__all__ = ["MultiprocessBackend", "run_multiprocess"]

_JOIN_SECONDS = 10.0

#: Reducers exit within one idle-wait of the shutdown sentinel; anything
#: slower is wedged and gets terminated.
_REDUCER_JOIN_SECONDS = 2.0

#: Respawn budget per reducer node (mirrors the engine's worker budget).
_REDUCER_RESPAWN_FACTOR = 4


def _worker_entry(routine: RealizationRoutine, config: RunConfig,
                  rank: int, quota: int, outbox, deadline: float | None,
                  ring_name: str | None = None,
                  job: str | None = None) -> None:
    """Worker process body: run the loop, shipping messages upstream.

    ``outbox`` is wherever this worker's messages go — the backend's
    queue (flat plan) or its reducer's inbox (tree plan).  With a ring
    name the worker writes the shared-memory fast path and uses the
    queue only as overflow.  A job id tags every message on the child
    side, so the scheduler can route interleaved traffic from several
    jobs sharing one queue; ``job=None`` (the classic path) leaves the
    messages byte-identical to the historical format.
    """
    telemetry = WorkerTelemetry(rank) if config.telemetry else None
    if job is None:
        send = outbox.put
    else:
        def send(message, _put=outbox.put, _job=job):
            _put(replace(message, job=_job))
    if ring_name is None:
        run_worker(routine, config, rank, quota, send=send,
                   deadline=deadline, telemetry=telemetry)
        return
    ring = attach_ring(ring_name)
    try:
        run_worker(routine, config, rank, quota,
                   send=ShmSender(ring, send),
                   deadline=deadline, telemetry=telemetry)
    finally:
        ring.close()


def _reducer_entry(node: ReducerNode, inbox, upstream,
                   ring_names: tuple[str, ...]) -> None:
    """Reducer process body: attach the subtree's rings and run the loop."""
    rings = [attach_ring(name) for name in ring_names]
    try:
        run_reducer(node, inbox, upstream, rings)
    finally:
        for ring in rings:
            ring.close()


@register_backend("multiprocess")
class MultiprocessBackend(EngineBackend):
    """One OS process per worker, a shared queue back to the collector.

    Args:
        start_method: Optional multiprocessing start method override
            ("fork" keeps closures, "spawn" requires a picklable
            module-level routine).
    """

    name = "multiprocess"
    monitors_staleness = True
    supports_shared_jobs = True
    #: Shared-pool jobs may carry their own ``reduction_fanout``: the
    #: backend plans a private k-ary tree per job at admission and
    #: tears it down at completion (``prepare_job``/``release_job``).
    supports_job_reduction = True

    def __init__(self, start_method: str | None = None) -> None:
        super().__init__()
        self._start_method = start_method
        self._context = None
        self._outbox = None
        self._bootstrapped = False
        self._processes: list = []
        # Keyed by rank on the classic path, by (job, rank) for
        # scheduler-dispatched assignments.
        self._live: dict = {}
        self._suspects: dict = {}
        # Reduction topology, one entry per tree owner: the classic
        # run-wide tree lives under the key None, each job-scoped tree
        # under its job id.  Reducer inboxes/processes are keyed
        # (owner, node_id).
        self._plans: dict = {}
        self._leaf_parents: dict = {}
        self._rings: dict[int, ShmRing] = {}
        self._root_rings: dict[int, ShmRing] = {}
        self._reducer_inboxes: dict[tuple, object] = {}
        self._reducers: dict[tuple, object] = {}
        self._reducer_respawns = 0
        self._respawn_budget = 0
        # The fetch closures read self._outbox / self._root_rings at
        # call time (both are created lazily on first spawn; tests swap
        # the queue out).  Rings drain ahead of the queue inside the
        # shared buffer, keeping the drain-before-verdict contract over
        # both channels.
        self._drained = DrainBuffer(
            lambda: self._outbox.get_nowait(),
            rings=lambda: self._root_rings.values())

    # -- topology ---------------------------------------------------------

    @property
    def _shm(self) -> bool:
        return self.config.transport == "shm"

    def _ensure_context(self) -> None:
        """Create the multiprocessing context and outbox once."""
        if self._context is not None:
            return
        self._context = (
            multiprocessing.get_context(self._start_method)
            if self._start_method else multiprocessing.get_context())
        self._outbox = self._context.Queue()
        if self._shm:
            # Reclaim segments a SIGKILLed earlier run left behind.
            sweep_orphans()

    def _bootstrap(self, assignments) -> None:
        """First spawn: context, queues, rings and reducer processes."""
        self._ensure_context()
        ranks = [assignment.rank for assignment in assignments]
        plan = plan_reduction(ranks, self.config.reduction_fanout)
        self._plans[None] = plan
        self._leaf_parents[None] = dict(plan.leaf_parents)
        self._respawn_budget += (_REDUCER_RESPAWN_FACTOR
                                 * max(len(plan.nodes), 1))
        if self._shm:
            for rank in ranks:
                self._rings[rank] = ShmRing.create(
                    segment_name(f"r{rank}"), self.config.shape)
        for node in plan.nodes:
            self._reducer_inboxes[(None, node.node_id)] = \
                self._context.Queue()
        for node in plan.nodes:
            self._start_reducer(None, node)

    def _upstream_of(self, owner, node: ReducerNode):
        """Where a reducer forwards to: its parent's inbox or rank 0."""
        if node.parent is not None:
            return self._reducer_inboxes[(owner, node.parent)]
        return self._outbox

    def _start_reducer(self, owner, node: ReducerNode) -> int:
        ring_names = (tuple(self._rings[rank].name
                            for rank in node.worker_ranks)
                      if self._shm and owner is None else ())
        process = self._context.Process(
            target=_reducer_entry,
            args=(node, self._reducer_inboxes[(owner, node.node_id)],
                  self._upstream_of(owner, node), ring_names),
            daemon=True)
        process.start()
        self._reducers[(owner, node.node_id)] = process
        return process.pid

    # -- job-scoped trees -------------------------------------------------

    def prepare_job(self, job) -> None:
        """Plan and start a private reduction tree for one job.

        Called by the scheduler at admission.  A job whose
        ``reduction_fanout`` is None — or already covers its worker
        count — keeps the flat exchange and costs nothing.
        """
        fanout = job.config.reduction_fanout
        if fanout is None:
            return
        plan = plan_reduction(range(job.config.processors), fanout)
        if plan.flat:
            return
        self._ensure_context()
        self._plans[job.id] = plan
        self._leaf_parents[job.id] = dict(plan.leaf_parents)
        self._respawn_budget += _REDUCER_RESPAWN_FACTOR * len(plan.nodes)
        for node in plan.nodes:
            self._reducer_inboxes[(job.id, node.node_id)] = \
                self._context.Queue()
        for node in plan.nodes:
            self._start_reducer(job.id, node)

    def release_job(self, job: str | None) -> None:
        """Tear down a finished/cancelled job's reduction tree.

        The reducers normally retire themselves once every subtree
        rank's final pass is forwarded; the sentinel covers cancelled
        jobs and the join puts a bound on wedged nodes.
        """
        plan = self._plans.pop(job, None)
        self._leaf_parents.pop(job, None)
        if plan is None:
            return
        for node in plan.nodes:
            inbox = self._reducer_inboxes.get((job, node.node_id))
            if inbox is not None:
                try:
                    inbox.put_nowait(None)
                except (queue_module.Full, ValueError):  # pragma: no cover
                    pass
        for node in plan.nodes:
            process = self._reducers.pop((job, node.node_id), None)
            if process is None:
                continue
            process.join(timeout=_REDUCER_JOIN_SECONDS)
            if process.is_alive():
                process.terminate()
        for node in plan.nodes:
            inbox = self._reducer_inboxes.pop((job, node.node_id), None)
            if inbox is not None:
                inbox.close()

    def cancel_job(self, job: str | None) -> None:
        """Terminate a cancelled job's live workers immediately."""
        for key, process in list(self._live.items()):
            if isinstance(key, tuple) and key[0] == job:
                process.terminate()
                self._live.pop(key, None)
                self._suspects.pop(key, None)

    def _job_context(self, job: str | None):
        """Per-assignment context: this backend for the classic path
        (``job=None``), the owning job's view otherwise."""
        if job is None or self.engine is None:
            return self
        return self.engine.job_context(job)

    def spawn(self, assignments) -> list[dict]:
        if not self._bootstrapped:
            self._bootstrapped = True
            self._bootstrap(assignments)
        extras = []
        for assignment in assignments:
            rank = assignment.rank
            job = assignment.job
            context = self._job_context(job)
            if self._shm and rank not in self._rings:
                # A recovery rank beyond the planned tree: it reports
                # straight to rank 0 on a fresh ring.
                self._rings[rank] = ShmRing.create(
                    segment_name(f"r{rank}"), self.config.shape)
            parent = self._leaf_parents.get(job, {}).get(rank)
            outbox = (self._reducer_inboxes[(job, parent)]
                      if parent is not None else self._outbox)
            ring_name = None
            if self._shm:
                ring_name = self._rings[rank].name
                if parent is None:
                    self._root_rings[rank] = self._rings[rank]
            process = self._context.Process(
                target=_worker_entry,
                args=(context.routine, context.config, rank,
                      assignment.quota, outbox, context.deadline,
                      ring_name, job),
                daemon=True)
            process.start()
            self._processes.append(process)
            self._live[rank if job is None else (job, rank)] = process
            extras.append({"pid": process.pid})
        return extras

    # -- message path -----------------------------------------------------

    def poll(self, timeout: float
             ) -> MomentMessage | CombinedMessage | None:
        message = self._drained.pop()
        if message is not None:
            return message
        if self._root_rings and self._drained.drain():
            return self._drained.pop()
        try:
            # With live rings the blocking wait is capped so ring
            # traffic is never starved behind an idle queue.
            return self._outbox.get(
                timeout=min(timeout, 0.005) if self._root_rings
                else timeout)
        except queue_module.Empty:
            return None

    # -- health -----------------------------------------------------------

    def _check_reducers(self, now: float) -> None:
        """Respawn (or fail on) reducer processes that died.

        A reducer is a stateless relay over cumulative snapshots: the
        respawned process reattaches to the same inbox, upstream queue
        and rings, rebuilds its latest-per-rank view from its
        children's next passes, and the subtree continues.  Anything
        the dead node absorbed but never forwarded is covered by the
        normal worker grace path (an eaten final leads to a quota
        reassignment; late subtree duplicates drop at the collector).
        """
        for key, process in list(self._reducers.items()):
            owner, node_id = key
            exitcode = process.exitcode
            if exitcode is None:
                continue
            del self._reducers[key]
            if exitcode == 0:
                continue  # subtree complete; the node retired itself
            plan = self._plans.get(owner)
            if plan is None:
                continue  # the owning job's tree was already released
            context = self._job_context(owner)
            if context.config.on_worker_death != "reassign":
                raise BackendError(
                    f"reducer {node_id} died (exitcode {exitcode}) "
                    f"before its subtree finished")
            if self._respawn_budget <= 0:
                raise BackendError(
                    f"reducer {node_id} died but the respawn budget is "
                    f"exhausted")
            self._respawn_budget -= 1
            self._reducer_respawns += 1
            pid = self._start_reducer(owner, plan.node(node_id))
            telemetry = (context.telemetry if owner is not None
                         else (self.engine.telemetry
                               if self.engine is not None else None))
            if telemetry is not None:
                telemetry.registry.counter("reduction.respawns").inc()
                telemetry.events.append(
                    "reducer_respawned", ts=now, node=node_id,
                    exitcode=exitcode, pid=pid)
                telemetry.events.flush()

    def _sample_rings(self) -> None:
        """Ring telemetry: occupancy high-water and queue fallbacks."""
        telemetry = (self.engine.telemetry
                     if self.engine is not None else None)
        if telemetry is None or not self._rings:
            return
        registry = telemetry.registry
        occupancy = max(ring.occupancy() for ring in self._rings.values())
        gauge = registry.gauge("transport.ring_occupancy")
        gauge.set(occupancy)
        peak = registry.gauge("transport.ring_occupancy_peak")
        peak.set(max(peak.value, occupancy))
        registry.gauge("transport.ring_fallbacks").set(
            sum(ring.fallbacks for ring in self._rings.values()))

    def reap(self) -> list[WorkerDeath]:
        """Report children that died short of their final message.

        A worker that exited with a nonzero code (or a signal) is dead
        on sight.  A worker that exited *cleanly* but whose final
        message has not arrived gets ``config.death_grace`` seconds —
        its last message may still be crossing the queue's feeder
        thread (or sitting in a dead reducer's inbox) — and is declared
        dead only if the silence persists.

        Before judging anyone, the rings and the outbox are drained
        into the shared :class:`~repro.runtime.engine.DrainBuffer`: a
        slow-but-delivered message must reach the collector before its
        sender can be declared dead, and must never burn grace time
        while it sits in the channel.  Dead reducers are respawned (or
        fail the run) here too — before the worker verdicts, so a
        respawned subtree gets to deliver pending finals first.
        """
        if self._drained.drain():
            # Let the engine ingest the buffered messages first; death
            # verdicts resume on the next empty poll.
            return []
        now = self.clock()
        self._check_reducers(now)
        self._sample_rings()
        dead: list[WorkerDeath] = []
        dead_keys: list = []
        for key, process in list(self._live.items()):
            job, rank = key if isinstance(key, tuple) else (None, key)
            context = self._job_context(job)
            if process.exitcode is None \
                    or rank in context.collector.final_ranks:
                self._suspects.pop(key, None)
                if process.exitcode is not None:
                    del self._live[key]  # finalized and exited: done
                continue
            if process.exitcode != 0:
                dead.append(WorkerDeath(rank, process.exitcode, job=job))
                dead_keys.append(key)
            else:
                first_seen = self._suspects.setdefault(key, now)
                if now - first_seen >= context.config.death_grace:
                    dead.append(WorkerDeath(rank, process.exitcode,
                                            job=job))
                    dead_keys.append(key)
        for key in dead_keys:
            self._live.pop(key, None)
            self._suspects.pop(key, None)
        return dead

    # -- teardown ---------------------------------------------------------

    def shutdown(self) -> None:
        for process in self._processes:
            process.join(timeout=_JOIN_SECONDS)
            if process.is_alive():
                process.terminate()
        for inbox in self._reducer_inboxes.values():
            try:
                inbox.put_nowait(None)  # the reducer stop sentinel
            except (queue_module.Full, ValueError):  # pragma: no cover
                pass
        for process in self._reducers.values():
            process.join(timeout=_REDUCER_JOIN_SECONDS)
            if process.is_alive():
                process.terminate()
        if self._outbox is not None:
            self._outbox.close()
        for inbox in self._reducer_inboxes.values():
            inbox.close()
        # The backend is the single owner of every segment: close the
        # mapping and unlink so nothing survives in /dev/shm (a crash
        # before this point is covered by the bootstrap sweep).
        for ring in self._rings.values():
            ring.close()
            ring.unlink()
        self._rings.clear()
        self._root_rings.clear()


def run_multiprocess(routine: RealizationRoutine, config: RunConfig,
                     use_files: bool = True,
                     start_method: str | None = None) -> RunResult:
    """Run one session with one OS process per simulated processor.

    Args:
        routine: User realization routine; must survive the chosen
            multiprocessing start method ("fork" keeps closures, "spawn"
            requires a picklable module-level routine).
        config: The run configuration; ``config.reduction_fanout`` and
            ``config.transport`` select the exchange topology and the
            same-host transport (estimates are bit-identical across
            all combinations).
        use_files: Write result files and save-points.
        start_method: Optional multiprocessing start method override.

    Raises:
        BackendError: If a worker dies without delivering its final
            message and ``config.on_worker_death`` is ``"fail"`` —
            whether it crashed (nonzero exit, signal) or exited cleanly
            without finishing its quota.
    """
    return Engine(MultiprocessBackend(start_method=start_method), config,
                  use_files=use_files).run(routine)
